"""HyParView-style partial-view membership.

Full-mesh membership is what pins every experiment at toy scale: each
node tracking (and gossiping with, and checkpointing to) all n-1 peers
makes world size a quadratic cost.  Partisan's scaling result (see
PAPERS.md) replaced full views with HyParView partial views — a small
symmetric *active* view used for actual traffic, backed by a larger
*passive* view of fallback peers refreshed by random-walk shuffles —
and took an actor runtime from ~200 to 10k+ nodes.  This module is that
move for our stack.

:class:`PartialViewMembership` is a :class:`~repro.statemachine.Service`
mixin.  Compose it *before* an application service so its cooperative
``on_init`` bootstraps the overlay and the application inherits:

* ``self.active`` / ``self.passive`` — the two views (checkpointable
  state fields, deterministic list order);
* ``neighbors()`` — the active view, which the CrystalBall runtime
  picks up automatically for O(active_size) checkpoint neighborhoods
  instead of O(n) full broadcasts;
* ``on_neighbor_up(peer)`` / ``on_neighbor_down(peer)`` — overridable
  reaction hooks;
* trace records ``view.join`` / ``view.up`` / ``view.down`` /
  ``view.shuffle`` for forensics.

All randomness (walk targets, shuffle samples, evictions) draws from
the node-scoped named stream ``"membership"``, so runs are reproducible
and adding membership does not perturb application streams.

Protocol summary (HyParView, lightly simplified):

* JOIN — a joiner contacts a bootstrap node, which links to it and
  propagates FORWARD-JOIN random walks of TTL ``arwl`` through its
  active view; walks insert the joiner into passive views at TTL
  ``prwl`` and into the active view of the node where they terminate.
* NEIGHBOR — active-view links are negotiated: the requester sends
  ``ViewNeighbor`` (high priority when it has no active peers, which
  the receiver may not refuse), the receiver answers accepted/rejected.
* SHUFFLE — periodically each node sends a sample of both views on a
  short random walk; where the walk ends, samples are exchanged into
  passive views, keeping them fresh under churn.
* PROBE — lightweight failure detection: unanswered probes beyond
  ``probe_miss_limit`` drop the peer and promote a passive fallback,
  as does a broken transport connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..statemachine.handlers import msg_handler, timer_handler
from ..statemachine.messages import Message
from ..statemachine.service import Service

VIEW_STATE_FIELDS = ("active", "passive", "probe_missed")


@dataclass
class ViewConfig:
    """Partial-view parameters.

    Defaults follow the HyParView paper's shape: a fist-sized active
    view (c + log n with small c) and a passive view a few times
    larger.  ``contact`` is the bootstrap node every joiner contacts
    first.
    """

    active_size: int = 5
    passive_size: int = 30
    arwl: int = 6              # active random-walk length (forward-joins)
    prwl: int = 3              # passive random-walk length
    shuffle_period: float = 1.0
    shuffle_active: int = 3    # active samples per shuffle
    shuffle_passive: int = 4   # passive samples per shuffle
    probe_period: float = 0.5
    probe_miss_limit: int = 3
    contact: int = 0
    join_retry: float = 1.0


@dataclass
class ViewJoin(Message):
    joiner: int


@dataclass
class ViewForwardJoin(Message):
    joiner: int
    ttl: int


@dataclass
class ViewNeighbor(Message):
    priority: bool


@dataclass
class ViewNeighborReply(Message):
    accepted: bool


@dataclass
class ViewDisconnect(Message):
    pass


@dataclass
class ViewShuffle(Message):
    origin: int
    ttl: int
    nodes: List[int]


@dataclass
class ViewShuffleReply(Message):
    nodes: List[int]


@dataclass
class ViewProbe(Message):
    pass


@dataclass
class ViewProbeAck(Message):
    pass


class PartialViewMembership(Service):
    """Service mixin maintaining HyParView active/passive views.

    Usable standalone (pure membership node) or composed in front of an
    application service::

        class ViewGossip(PartialViewMembership, ExposedGossip):
            state_fields = ExposedGossip.state_fields + VIEW_STATE_FIELDS

            def __init__(self, node_id, config=None, view_config=None):
                ExposedGossip.__init__(self, node_id, config)
                self.init_views(view_config)

    The mixin's ``on_init`` bootstraps the overlay and then calls
    ``super().on_init()`` so the application's initialization runs too.
    """

    state_fields = VIEW_STATE_FIELDS

    def __init__(self, node_id: int, view_config: Optional[ViewConfig] = None) -> None:
        super().__init__(node_id)
        self.init_views(view_config)

    def init_views(self, view_config: Optional[ViewConfig] = None) -> None:
        """Initialize view state; composed classes call this from their
        own ``__init__`` instead of chaining this class's."""
        self.view_config = view_config if view_config is not None else ViewConfig()
        self.active: List[int] = []
        self.passive: List[int] = []
        self.probe_missed: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Hooks / introspection
    # ------------------------------------------------------------------

    def on_neighbor_up(self, peer: int) -> None:
        """Called when ``peer`` enters the active view."""

    def on_neighbor_down(self, peer: int) -> None:
        """Called when ``peer`` leaves the active view."""

    def neighbors(self) -> List[int]:
        """The active view — the CrystalBall runtime calls this to pick
        its checkpoint/prediction neighborhood."""
        return list(self.active)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_init(self) -> None:
        cfg = self.view_config
        if self.node_id != cfg.contact:
            self.send(cfg.contact, ViewJoin(joiner=self.node_id))
            self.set_timer("view-join-retry", cfg.join_retry)
        rng = self._view_rng()
        if cfg.shuffle_period > 0:
            # Desynchronized start offsets: a thousand nodes shuffling
            # on the same instant would serialize through the queue.
            self.set_timer("view-shuffle", cfg.shuffle_period * (1.0 + rng.random()))
        if cfg.probe_period > 0:
            self.set_timer("view-probe", cfg.probe_period * (1.0 + rng.random()))
        super().on_init()

    def on_connection_broken(self, peer: int) -> None:
        if peer in self.active:
            self._drop_active(peer, reason="connection-broken", demote=True,
                              disconnect=False)
        super().on_connection_broken(peer)

    # ------------------------------------------------------------------
    # Join protocol
    # ------------------------------------------------------------------

    @msg_handler(ViewJoin)
    def handle_view_join(self, src: int, msg: ViewJoin) -> None:
        joiner = msg.joiner
        if joiner == self.node_id:
            return
        self.record("view.join", joiner=joiner)
        walkers = [p for p in self.active if p != joiner]
        self._add_active(joiner)
        ttl = self.view_config.arwl
        for peer in walkers:
            self.send(peer, ViewForwardJoin(joiner=joiner, ttl=ttl))

    @msg_handler(ViewForwardJoin)
    def handle_forward_join(self, src: int, msg: ViewForwardJoin) -> None:
        joiner = msg.joiner
        if joiner == self.node_id:
            return
        cfg = self.view_config
        if msg.ttl <= 0 or len(self.active) <= 1:
            self._add_active(joiner)
            return
        if msg.ttl == cfg.prwl:
            self._add_passive(joiner)
        onward = [p for p in self.active if p != src and p != joiner]
        if onward:
            nxt = self._view_rng().choice(onward)
            self.send(nxt, ViewForwardJoin(joiner=joiner, ttl=msg.ttl - 1))
        else:
            self._add_active(joiner)

    @timer_handler("view-join-retry")
    def on_view_join_retry(self, payload) -> None:
        if self.active:
            return
        cfg = self.view_config
        if self.node_id != cfg.contact:
            self.send(cfg.contact, ViewJoin(joiner=self.node_id))
            self.set_timer("view-join-retry", cfg.join_retry)

    # ------------------------------------------------------------------
    # Neighbor negotiation
    # ------------------------------------------------------------------

    @msg_handler(ViewNeighbor)
    def handle_view_neighbor(self, src: int, msg: ViewNeighbor) -> None:
        cfg = self.view_config
        if src in self.active:
            self.send(src, ViewNeighborReply(accepted=True))
            return
        if msg.priority or len(self.active) < cfg.active_size:
            self._add_active(src, notify=False)
            self.send(src, ViewNeighborReply(accepted=True))
        else:
            self._add_passive(src)
            self.send(src, ViewNeighborReply(accepted=False))

    @msg_handler(ViewNeighborReply)
    def handle_view_neighbor_reply(self, src: int, msg: ViewNeighborReply) -> None:
        if msg.accepted:
            self._add_active(src, notify=False)
        else:
            if src in self.active:
                self._drop_active(src, reason="refused", demote=True,
                                  disconnect=False)
            else:
                self._add_passive(src)
                self._fill_active()

    @msg_handler(ViewDisconnect)
    def handle_view_disconnect(self, src: int, msg: ViewDisconnect) -> None:
        if src in self.active:
            self._drop_active(src, reason="disconnect", demote=True,
                              disconnect=False)

    # ------------------------------------------------------------------
    # Shuffles
    # ------------------------------------------------------------------

    @timer_handler("view-shuffle")
    def on_view_shuffle(self, payload) -> None:
        cfg = self.view_config
        if self.active:
            rng = self._view_rng()
            target = rng.choice(self.active)
            nodes = [self.node_id]
            nodes += self._sample(self.active, cfg.shuffle_active, {target})
            nodes += self._sample(self.passive, cfg.shuffle_passive, {target})
            self.record("view.shuffle", target=target, count=len(nodes))
            self.send(target, ViewShuffle(origin=self.node_id, ttl=cfg.prwl,
                                          nodes=nodes))
        self.set_timer("view-shuffle", cfg.shuffle_period)

    @msg_handler(ViewShuffle)
    def handle_view_shuffle(self, src: int, msg: ViewShuffle) -> None:
        if msg.origin == self.node_id:
            return
        if msg.ttl > 0:
            onward = [p for p in self.active if p != src and p != msg.origin]
            if onward:
                nxt = self._view_rng().choice(onward)
                self.send(nxt, ViewShuffle(origin=msg.origin, ttl=msg.ttl - 1,
                                           nodes=msg.nodes))
                return
        reply = self._sample(self.passive, len(msg.nodes), {msg.origin})
        for peer in msg.nodes:
            self._add_passive(peer)
        self.send(msg.origin, ViewShuffleReply(nodes=reply))

    @msg_handler(ViewShuffleReply)
    def handle_view_shuffle_reply(self, src: int, msg: ViewShuffleReply) -> None:
        for peer in msg.nodes:
            self._add_passive(peer)

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------

    @timer_handler("view-probe")
    def on_view_probe(self, payload) -> None:
        cfg = self.view_config
        for peer in list(self.active):
            missed = self.probe_missed.get(peer, 0)
            if missed >= cfg.probe_miss_limit:
                self._drop_active(peer, reason="probe-timeout", demote=False,
                                  disconnect=False)
                continue
            self.probe_missed[peer] = missed + 1
            self.send(peer, ViewProbe())
        self.set_timer("view-probe", cfg.probe_period)

    @msg_handler(ViewProbe)
    def handle_view_probe(self, src: int, msg: ViewProbe) -> None:
        self.send(src, ViewProbeAck())

    @msg_handler(ViewProbeAck)
    def handle_view_probe_ack(self, src: int, msg: ViewProbeAck) -> None:
        if src in self.active:
            self.probe_missed[src] = 0

    # ------------------------------------------------------------------
    # View maintenance
    # ------------------------------------------------------------------

    def _view_rng(self):
        return self.rng("membership")

    def _sample(self, pool: Sequence[int], k: int, exclude: Set[int]) -> List[int]:
        eligible = [p for p in pool if p not in exclude and p != self.node_id]
        if len(eligible) <= k:
            return eligible
        return self._view_rng().sample(eligible, k)

    def _add_active(self, peer: int, notify: bool = True) -> None:
        if peer == self.node_id or peer in self.active:
            return
        if peer in self.passive:
            self.passive.remove(peer)
        cfg = self.view_config
        while len(self.active) >= cfg.active_size:
            victim = self.active[self._view_rng().randrange(len(self.active))]
            self._drop_active(victim, reason="evicted", demote=True,
                              disconnect=True, refill=False)
        self.active.append(peer)
        self.probe_missed.pop(peer, None)
        self.record("view.up", peer=peer)
        self.on_neighbor_up(peer)
        if notify:
            self.send(peer, ViewNeighbor(priority=len(self.active) == 1))

    def _drop_active(
        self,
        peer: int,
        reason: str,
        demote: bool,
        disconnect: bool,
        refill: bool = True,
    ) -> None:
        if peer not in self.active:
            return
        self.active.remove(peer)
        self.probe_missed.pop(peer, None)
        if disconnect:
            self.send(peer, ViewDisconnect())
        if demote:
            self._add_passive(peer)
        self.record("view.down", peer=peer, reason=reason)
        self.on_neighbor_down(peer)
        if refill:
            self._fill_active()

    def _add_passive(self, peer: int) -> None:
        if peer == self.node_id or peer in self.active or peer in self.passive:
            return
        cfg = self.view_config
        while len(self.passive) >= cfg.passive_size:
            self.passive.pop(self._view_rng().randrange(len(self.passive)))
        self.passive.append(peer)

    def _fill_active(self) -> None:
        """Promote a passive candidate when the active view is short.

        Optimistic: the candidate is only added once it accepts (its
        :class:`ViewNeighborReply`), so a dead fallback costs one probe
        round, not a view slot.
        """
        cfg = self.view_config
        if len(self.active) >= cfg.active_size:
            return
        candidates = [p for p in self.passive if p not in self.active]
        if not candidates:
            return
        peer = self._view_rng().choice(candidates)
        self.send(peer, ViewNeighbor(priority=not self.active))


def make_membership_factory(view_config: Optional[ViewConfig] = None):
    """Factory of standalone membership services sharing one config."""
    cfg = view_config if view_config is not None else ViewConfig()

    def factory(node_id: int) -> PartialViewMembership:
        return PartialViewMembership(node_id, cfg)

    return factory


__all__ = [
    "VIEW_STATE_FIELDS",
    "ViewConfig",
    "ViewJoin",
    "ViewForwardJoin",
    "ViewNeighbor",
    "ViewNeighborReply",
    "ViewDisconnect",
    "ViewShuffle",
    "ViewShuffleReply",
    "ViewProbe",
    "ViewProbeAck",
    "PartialViewMembership",
    "make_membership_factory",
]
