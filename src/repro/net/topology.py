"""Network topologies.

A :class:`Topology` maps ordered node pairs to :class:`~repro.net.link.Link`
parameters.  Builders cover the deployments the paper's examples run on:
uniform clusters (full mesh), client/server stars, random wide-area
latency mixes, and a transit-stub *Internet-like* topology matching the
ModelNet setup of the case study (Section 4).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from .link import LOOPBACK, Link


class TopologyError(Exception):
    """Raised for malformed topologies or unknown nodes."""


class Topology:
    """Pairwise link parameters over node ids ``0..n-1``.

    Links are directed; :meth:`set_link` installs one direction, and
    :meth:`set_symmetric` both.  Missing pairs fall back to ``default``
    (if provided) so sparse constructions stay cheap.
    """

    def __init__(self, n: int, default: Optional[Link] = None) -> None:
        if n <= 0:
            raise TopologyError(f"topology needs at least one node, got n={n!r}")
        self.n = n
        self.default = default
        self._links: Dict[Tuple[int, int], Link] = {}

    @property
    def node_ids(self) -> List[int]:
        """All node ids, ascending."""
        return list(range(self.n))

    def _check(self, node_id: int) -> None:
        if not 0 <= node_id < self.n:
            raise TopologyError(f"node {node_id!r} outside 0..{self.n - 1}")

    def set_link(self, src: int, dst: int, link: Link) -> None:
        """Install a directed link from ``src`` to ``dst``."""
        self._check(src)
        self._check(dst)
        self._links[(src, dst)] = link

    def set_symmetric(self, a: int, b: int, link: Link) -> None:
        """Install the same link parameters in both directions."""
        self.set_link(a, b, link)
        self.set_link(b, a, link)

    def link(self, src: int, dst: int) -> Link:
        """The link from ``src`` to ``dst``; loopback for ``src == dst``."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return LOOPBACK
        found = self._links.get((src, dst))
        if found is not None:
            return found
        if self.default is not None:
            return self.default
        raise TopologyError(f"no link from {src} to {dst} and no default")

    def latency(self, src: int, dst: int) -> float:
        """One-way propagation latency from ``src`` to ``dst``."""
        return self.link(src, dst).latency

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All explicitly-installed directed pairs."""
        return self._links.keys()

    def __repr__(self) -> str:
        return f"Topology(n={self.n}, explicit_links={len(self._links)})"


def full_mesh(n: int, latency: float = 0.05, bandwidth: float = 10e6, loss: float = 0.0) -> Topology:
    """Uniform full mesh: every pair shares the same link parameters."""
    return Topology(n, default=Link(latency=latency, bandwidth=bandwidth, loss=loss))


def star(
    n: int,
    center: int = 0,
    spoke_latency: float = 0.02,
    bandwidth: float = 10e6,
    loss: float = 0.0,
) -> Topology:
    """Star topology: spokes reach each other through the center.

    Spoke-to-spoke latency is the sum of the two spoke latencies.
    """
    topo = Topology(n)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            hops = (0 if i == center else 1) + (0 if j == center else 1)
            topo.set_link(i, j, Link(latency=spoke_latency * hops, bandwidth=bandwidth, loss=loss))
    return topo


def random_uniform(
    n: int,
    rng: random.Random,
    latency_range: Tuple[float, float] = (0.01, 0.1),
    bandwidth_range: Tuple[float, float] = (5e6, 50e6),
    loss: float = 0.0,
) -> Topology:
    """Random symmetric topology with uniform latency/bandwidth draws."""
    lo, hi = latency_range
    blo, bhi = bandwidth_range
    topo = Topology(n)
    for i in range(n):
        for j in range(i + 1, n):
            link = Link(
                latency=rng.uniform(lo, hi),
                bandwidth=rng.uniform(blo, bhi),
                loss=loss,
            )
            topo.set_symmetric(i, j, link)
    return topo


def transit_stub(
    n: int,
    rng: random.Random,
    n_transit: int = 4,
    transit_latency_range: Tuple[float, float] = (0.02, 0.06),
    stub_latency_range: Tuple[float, float] = (0.005, 0.02),
    access_latency_range: Tuple[float, float] = (0.001, 0.005),
    bandwidth_range: Tuple[float, float] = (5e6, 100e6),
    loss: float = 0.0,
) -> Topology:
    """Internet-like transit-stub topology (the ModelNet setup of §4).

    Each node hangs off a stub domain; each stub attaches to one transit
    node; transit nodes form a backbone.  End-to-end latency between two
    nodes is access + stub-uplink + backbone path + stub-downlink +
    access, which yields the clustered wide-area latency distribution
    that ModelNet's INET topologies produce.
    """
    if n_transit <= 0:
        raise TopologyError("need at least one transit node")
    # Backbone: pairwise latencies among transit nodes.
    backbone: Dict[Tuple[int, int], float] = {}
    tlo, thi = transit_latency_range
    for a in range(n_transit):
        for b in range(a + 1, n_transit):
            lat = rng.uniform(tlo, thi)
            backbone[(a, b)] = lat
            backbone[(b, a)] = lat
    slo, shi = stub_latency_range
    alo, ahi = access_latency_range
    transit_of = [rng.randrange(n_transit) for _ in range(n)]
    stub_uplink = [rng.uniform(slo, shi) for _ in range(n)]
    access = [rng.uniform(alo, ahi) for _ in range(n)]

    blo, bhi = bandwidth_range
    topo = Topology(n)
    for i in range(n):
        for j in range(i + 1, n):
            ti, tj = transit_of[i], transit_of[j]
            core = 0.0 if ti == tj else backbone[(ti, tj)]
            lat = access[i] + stub_uplink[i] + core + stub_uplink[j] + access[j]
            link = Link(latency=lat, bandwidth=rng.uniform(blo, bhi), loss=loss)
            topo.set_symmetric(i, j, link)
    return topo


__all__ = [
    "Topology",
    "TopologyError",
    "full_mesh",
    "star",
    "random_uniform",
    "transit_stub",
]
