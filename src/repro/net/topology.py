"""Network topologies.

A :class:`Topology` maps ordered node pairs to :class:`~repro.net.link.Link`
parameters.  Builders cover the deployments the paper's examples run on:
uniform clusters (full mesh), client/server stars, random wide-area
latency mixes, and a transit-stub *Internet-like* topology matching the
ModelNet setup of the case study (Section 4).

Large worlds need sparse representations: a 4,096-node mesh has ~16.7M
ordered pairs, so materializing a Link per pair is untenable.  Three
mechanisms keep big topologies cheap:

* ``default`` — one shared Link for every unlisted pair (full meshes);
* ``link_fn`` — a function ``(src, dst) -> Link | None`` consulted for
  pairs with no explicit link, with results cached on first use, so
  structured topologies (star, transit-stub) are O(touched pairs) in
  memory instead of O(n²);
* ``node_ids`` is a ``range`` view, not a fresh list per call.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..sim.rng import derive_seed
from .link import LOOPBACK, Link

LinkFn = Callable[[int, int], Optional[Link]]


class TopologyError(Exception):
    """Raised for malformed topologies or unknown nodes."""


class Topology:
    """Pairwise link parameters over node ids ``0..n-1``.

    Links are directed; :meth:`set_link` installs one direction, and
    :meth:`set_symmetric` both.  Lookup order for a missing pair is
    explicit link → ``link_fn`` (cached) → ``default``.
    """

    def __init__(
        self,
        n: int,
        default: Optional[Link] = None,
        link_fn: Optional[LinkFn] = None,
    ) -> None:
        if n <= 0:
            raise TopologyError(f"topology needs at least one node, got n={n!r}")
        self.n = n
        self.default = default
        self.link_fn = link_fn
        self._links: Dict[Tuple[int, int], Link] = {}
        # Lazily-computed links (from link_fn) are cached separately so
        # pairs() keeps reporting only what was explicitly installed.
        self._computed: Dict[Tuple[int, int], Link] = {}
        self._node_ids = range(n)

    @property
    def node_ids(self) -> Sequence[int]:
        """All node ids, ascending — a cached range view, not a fresh
        list (hot at large n).  Callers must not mutate it; copy with
        ``list(...)`` if a mutable list is needed."""
        return self._node_ids

    def _check(self, node_id: int) -> None:
        if not 0 <= node_id < self.n:
            raise TopologyError(f"node {node_id!r} outside 0..{self.n - 1}")

    def set_link(self, src: int, dst: int, link: Link) -> None:
        """Install a directed link from ``src`` to ``dst``."""
        self._check(src)
        self._check(dst)
        self._links[(src, dst)] = link

    def set_symmetric(self, a: int, b: int, link: Link) -> None:
        """Install the same link parameters in both directions."""
        self.set_link(a, b, link)
        self.set_link(b, a, link)

    def link(self, src: int, dst: int) -> Link:
        """The link from ``src`` to ``dst``; loopback for ``src == dst``."""
        if not (0 <= src < self.n and 0 <= dst < self.n):
            self._check(src)
            self._check(dst)
        if src == dst:
            return LOOPBACK
        found = self._links.get((src, dst))
        if found is not None:
            return found
        if self.link_fn is not None:
            found = self._computed.get((src, dst))
            if found is None:
                found = self.link_fn(src, dst)
                if found is not None:
                    self._computed[(src, dst)] = found
            if found is not None:
                return found
        if self.default is not None:
            return self.default
        raise TopologyError(f"no link from {src} to {dst} and no default")

    def latency(self, src: int, dst: int) -> float:
        """One-way propagation latency from ``src`` to ``dst``."""
        return self.link(src, dst).latency

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All explicitly-installed directed pairs (lazily-derived links
        from ``link_fn`` are not listed here)."""
        return self._links.keys()

    def __repr__(self) -> str:
        return (
            f"Topology(n={self.n}, explicit_links={len(self._links)}, "
            f"lazy={self.link_fn is not None})"
        )


def _pair_rng(base_seed: int, i: int, j: int) -> random.Random:
    """A deterministic per-unordered-pair RNG: the same (i, j) always
    yields the same draws regardless of lookup order, which is what
    makes lazy topologies order-insensitive."""
    a, b = (i, j) if i < j else (j, i)
    return random.Random(derive_seed(base_seed, f"{a}-{b}"))


def full_mesh(n: int, latency: float = 0.05, bandwidth: float = 10e6, loss: float = 0.0) -> Topology:
    """Uniform full mesh: every pair shares the same link parameters."""
    return Topology(n, default=Link(latency=latency, bandwidth=bandwidth, loss=loss))


def star(
    n: int,
    center: int = 0,
    spoke_latency: float = 0.02,
    bandwidth: float = 10e6,
    loss: float = 0.0,
) -> Topology:
    """Star topology: spokes reach each other through the center.

    Spoke-to-spoke latency is the sum of the two spoke latencies.
    Sparse: only two Link values exist (spoke↔center and spoke↔spoke),
    derived on demand instead of installing O(n²) explicit links.
    """
    spoke = Link(latency=spoke_latency, bandwidth=bandwidth, loss=loss)
    through = Link(latency=spoke_latency * 2, bandwidth=bandwidth, loss=loss)

    def link_fn(i: int, j: int) -> Link:
        return spoke if (i == center or j == center) else through

    return Topology(n, link_fn=link_fn)


def random_uniform(
    n: int,
    rng: random.Random,
    latency_range: Tuple[float, float] = (0.01, 0.1),
    bandwidth_range: Tuple[float, float] = (5e6, 50e6),
    loss: float = 0.0,
    lazy: bool = False,
) -> Topology:
    """Random symmetric topology with uniform latency/bandwidth draws.

    With ``lazy=True`` no pairwise draws happen up front: each unordered
    pair's parameters come from a per-pair RNG derived from one base
    seed drawn from ``rng``, so construction is O(1) and only touched
    pairs are ever materialized.  (Draw *values* differ from the eager
    mode — lazy is a different, but equally deterministic, world.)
    """
    lo, hi = latency_range
    blo, bhi = bandwidth_range
    if lazy:
        base_seed = rng.getrandbits(64)

        def link_fn(i: int, j: int) -> Link:
            pr = _pair_rng(base_seed, i, j)
            return Link(latency=pr.uniform(lo, hi),
                        bandwidth=pr.uniform(blo, bhi), loss=loss)

        return Topology(n, link_fn=link_fn)

    topo = Topology(n)
    for i in range(n):
        for j in range(i + 1, n):
            link = Link(
                latency=rng.uniform(lo, hi),
                bandwidth=rng.uniform(blo, bhi),
                loss=loss,
            )
            topo.set_symmetric(i, j, link)
    return topo


def transit_stub(
    n: Optional[int] = None,
    rng: Optional[random.Random] = None,
    n_transit: int = 4,
    transit_latency_range: Tuple[float, float] = (0.02, 0.06),
    stub_latency_range: Tuple[float, float] = (0.005, 0.02),
    access_latency_range: Tuple[float, float] = (0.001, 0.005),
    bandwidth_range: Tuple[float, float] = (5e6, 100e6),
    loss: float = 0.0,
    n_stubs: Optional[int] = None,
    stub_size: Optional[int] = None,
    lazy: bool = False,
) -> Topology:
    """Internet-like transit-stub topology (the ModelNet setup of §4).

    Each node hangs off a stub domain; each stub attaches to one transit
    node; transit nodes form a backbone.  End-to-end latency between two
    nodes is access + stub-uplink + backbone path + stub-downlink +
    access, which yields the clustered wide-area latency distribution
    that ModelNet's INET topologies produce.

    Two construction modes:

    * ``transit_stub(n, rng)`` — the legacy per-node-stub mode.  With
      ``lazy=False`` (default) it draws pairwise bandwidths eagerly and
      is byte-compatible with earlier releases; ``lazy=True`` skips the
      O(n²) pairwise draws and derives bandwidth per pair on demand.
    * ``transit_stub(rng=rng, n_stubs=S, stub_size=K)`` — the scalable
      grouped mode (``n = S·K``): node ``i`` lives in stub ``i // K``,
      structural draws are O(S + n), and links are always derived
      lazily.  Same-stub pairs pay only their access latencies (the
      stub LAN); cross-stub pairs pay the full path.
    """
    if rng is None:
        raise TopologyError("transit_stub needs an rng")
    if n_transit <= 0:
        raise TopologyError("need at least one transit node")
    if (n_stubs is None) != (stub_size is None):
        raise TopologyError("n_stubs and stub_size must be given together")

    grouped = n_stubs is not None
    if grouped:
        if n_stubs <= 0 or stub_size <= 0:
            raise TopologyError("n_stubs and stub_size must be positive")
        if n is not None and n != n_stubs * stub_size:
            raise TopologyError(
                f"n={n} conflicts with n_stubs*stub_size={n_stubs * stub_size}"
            )
        n = n_stubs * stub_size
    elif n is None:
        raise TopologyError("transit_stub needs n (or n_stubs + stub_size)")

    # Backbone: pairwise latencies among transit nodes.
    backbone: Dict[Tuple[int, int], float] = {}
    tlo, thi = transit_latency_range
    for a in range(n_transit):
        for b in range(a + 1, n_transit):
            lat = rng.uniform(tlo, thi)
            backbone[(a, b)] = lat
            backbone[(b, a)] = lat
    slo, shi = stub_latency_range
    alo, ahi = access_latency_range
    blo, bhi = bandwidth_range

    if grouped:
        # One transit attachment + uplink latency per stub, one access
        # latency per node; everything else is derived per pair.
        transit_of_stub = [rng.randrange(n_transit) for _ in range(n_stubs)]
        stub_uplink = [rng.uniform(slo, shi) for _ in range(n_stubs)]
        access = [rng.uniform(alo, ahi) for _ in range(n)]
        base_seed = rng.getrandbits(64)

        def link_fn(i: int, j: int) -> Link:
            # Canonical pair order: float addition is not associative,
            # so summing in call order would break exact symmetry.
            if i > j:
                i, j = j, i
            si, sj = i // stub_size, j // stub_size
            if si == sj:
                lat = access[i] + access[j]
            else:
                ti, tj = transit_of_stub[si], transit_of_stub[sj]
                core = 0.0 if ti == tj else backbone[(ti, tj)]
                lat = (access[i] + stub_uplink[si] + core
                       + stub_uplink[sj] + access[j])
            return Link(latency=lat,
                        bandwidth=_pair_rng(base_seed, i, j).uniform(blo, bhi),
                        loss=loss)

        return Topology(n, link_fn=link_fn)

    transit_of = [rng.randrange(n_transit) for _ in range(n)]
    stub_uplink = [rng.uniform(slo, shi) for _ in range(n)]
    access = [rng.uniform(alo, ahi) for _ in range(n)]

    if lazy:
        base_seed = rng.getrandbits(64)

        def link_fn(i: int, j: int) -> Link:
            # Canonical pair order keeps latencies exactly symmetric and
            # identical to the eager path's i<j summation.
            if i > j:
                i, j = j, i
            ti, tj = transit_of[i], transit_of[j]
            core = 0.0 if ti == tj else backbone[(ti, tj)]
            lat = access[i] + stub_uplink[i] + core + stub_uplink[j] + access[j]
            return Link(latency=lat,
                        bandwidth=_pair_rng(base_seed, i, j).uniform(blo, bhi),
                        loss=loss)

        return Topology(n, link_fn=link_fn)

    topo = Topology(n)
    for i in range(n):
        for j in range(i + 1, n):
            ti, tj = transit_of[i], transit_of[j]
            core = 0.0 if ti == tj else backbone[(ti, tj)]
            lat = access[i] + stub_uplink[i] + core + stub_uplink[j] + access[j]
            link = Link(latency=lat, bandwidth=rng.uniform(blo, bhi), loss=loss)
            topo.set_symmetric(i, j, link)
    return topo


__all__ = [
    "Topology",
    "TopologyError",
    "full_mesh",
    "star",
    "random_uniform",
    "transit_stub",
]
