"""Time-varying network conditions.

Section 3.1 motivates choices with "choosing how to adapt to a change
in the underlying network"; Section 3.3 with models that must be kept
"up-to-date".  :class:`LinkDynamics` makes the substrate actually
change: it perturbs link latencies over simulated time (random
congestion episodes, or scripted step changes), so adaptive mechanisms
have something real to adapt to and EWMA models have something real to
track.

Topology objects are shared by reference with the transport, so an
installed change affects every subsequent send immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import Simulator
from .link import Link
from .topology import Topology


@dataclass
class CongestionEpisode:
    """One transient slowdown on a pair of nodes."""

    a: int
    b: int
    started_at: float
    ends_at: float
    original: Link


class LinkDynamics:
    """Random transient congestion on a live topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        period: float = 2.0,
        episode_duration: float = 4.0,
        latency_factor: float = 5.0,
        bandwidth_factor: float = 0.25,
        episode_probability: float = 0.5,
        focus_node: Optional[int] = None,
        stream: str = "net.dynamics",
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.period = period
        self.episode_duration = episode_duration
        self.latency_factor = latency_factor
        self.bandwidth_factor = bandwidth_factor
        self.episode_probability = episode_probability
        # With a focus node, every episode hits one of its links — the
        # "my access link is congested" scenario.
        self.focus_node = focus_node
        self._rng = sim.rng.stream(stream)
        self.active: List[CongestionEpisode] = []
        self.episodes_started = 0

    def start(self) -> None:
        """Begin the periodic congestion process."""
        self._running = True
        self.sim.schedule(self.period, self._tick, tag="net.dynamics")

    def stop(self) -> None:
        """Stop creating new episodes (active ones still end normally)."""
        self._running = False

    def _tick(self) -> None:
        if not getattr(self, "_running", False):
            return
        if self._rng.random() < self.episode_probability:
            self._start_episode()
        self.sim.schedule(self.period, self._tick, tag="net.dynamics")

    def _pick_pair(self) -> Tuple[int, int]:
        n = self.topology.n
        if self.focus_node is not None:
            a = self.focus_node
        else:
            a = self._rng.randrange(n)
        b = self._rng.randrange(n - 1)
        if b >= a:
            b += 1
        return a, b

    def _start_episode(self) -> None:
        a, b = self._pick_pair()
        busy = {(e.a, e.b) for e in self.active} | {(e.b, e.a) for e in self.active}
        if (a, b) in busy:
            return  # never stack episodes: the saved "original" must be clean
        original = self.topology.link(a, b)
        congested = Link(
            latency=original.latency * self.latency_factor,
            bandwidth=max(1.0, original.bandwidth * self.bandwidth_factor),
            loss=original.loss,
        )
        self.topology.set_symmetric(a, b, congested)
        episode = CongestionEpisode(
            a=a, b=b, started_at=self.sim.now,
            ends_at=self.sim.now + self.episode_duration, original=original,
        )
        self.active.append(episode)
        self.episodes_started += 1
        self.sim.trace.record(self.sim.now, "net.congestion_start", node=a, peer=b)
        self.sim.schedule(
            self.episode_duration, lambda: self._end_episode(episode),
            tag="net.dynamics.end",
        )

    def _end_episode(self, episode: CongestionEpisode) -> None:
        self.topology.set_symmetric(episode.a, episode.b, episode.original)
        if episode in self.active:
            self.active.remove(episode)
        self.sim.trace.record(
            self.sim.now, "net.congestion_end", node=episode.a, peer=episode.b,
        )


def schedule_latency_change(
    sim: Simulator,
    topology: Topology,
    at: float,
    a: int,
    b: int,
    latency: float,
    bandwidth: Optional[float] = None,
) -> None:
    """Scripted step change: at time ``at`` the (a, b) link moves to the
    given latency (and optionally bandwidth), symmetrically."""

    def apply() -> None:
        current = topology.link(a, b)
        topology.set_symmetric(
            a, b,
            Link(
                latency=latency,
                bandwidth=bandwidth if bandwidth is not None else current.bandwidth,
                loss=current.loss,
            ),
        )
        sim.trace.record(sim.now, "net.latency_change", node=a, peer=b, latency=latency)

    sim.schedule_at(at, apply, tag="net.latency_change")


__all__ = ["LinkDynamics", "CongestionEpisode", "schedule_latency_change"]
