"""Point-to-point link model.

A :class:`Link` captures the three performance parameters the paper's
predictive network model tracks — propagation latency, bandwidth, and
loss rate (Section 3.3.2: "modelling the network, including latency,
bandwidth, and loss information for the individual connections").
"""

from __future__ import annotations

from dataclasses import dataclass


class LinkError(Exception):
    """Raised for physically meaningless link parameters."""


@dataclass(frozen=True)
class Link:
    """Directed link parameters.

    :param latency: one-way propagation delay in seconds.
    :param bandwidth: capacity in bits per second.
    :param loss: independent per-message loss probability in [0, 1).
    """

    latency: float
    bandwidth: float = 10e6
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise LinkError(f"negative latency {self.latency!r}")
        if self.bandwidth <= 0:
            raise LinkError(f"non-positive bandwidth {self.bandwidth!r}")
        if not 0.0 <= self.loss < 1.0:
            raise LinkError(f"loss must be in [0, 1), got {self.loss!r}")

    def transmission_time(self, size_bytes: int) -> float:
        """Serialization delay for a message of ``size_bytes``."""
        return (size_bytes * 8.0) / self.bandwidth

    def one_way_delay(self, size_bytes: int) -> float:
        """Propagation plus serialization delay for one message."""
        return self.latency + self.transmission_time(size_bytes)


LOOPBACK = Link(latency=0.0, bandwidth=1e12, loss=0.0)

__all__ = ["Link", "LinkError", "LOOPBACK"]
