"""Virtual time for the discrete-event simulator.

All components in the reproduction measure time against a
:class:`VirtualClock` rather than the wall clock, which makes every
experiment a deterministic function of its configuration and seed.
Time is a float number of simulated seconds.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised on attempts to move a :class:`VirtualClock` backwards."""


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    The scheduler owns the clock and advances it to the timestamp of each
    event it dispatches.  Everyone else only reads :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`ClockError` if ``time`` is in the past; advancing to
        the current time is a no-op and is allowed because simultaneous
        events share a timestamp.
        """
        if time < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {time!r}"
            )
        self._now = float(time)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
