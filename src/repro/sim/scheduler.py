"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock, the event queue, the trace
log, and the root RNG registry.  Everything above it (network, services,
the CrystalBall runtime) schedules callbacks through it.  The simulator
is single-threaded and deterministic; the paper's live ModelNet
deployment is replaced by this substrate (see DESIGN.md section 2).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .clock import VirtualClock
from .events import EventHandle, EventQueue
from .rng import RngRegistry
from .trace import TraceLog


class SimulationError(Exception):
    """Raised on invalid scheduling requests."""


class Simulator:
    """Deterministic single-threaded discrete-event simulator."""

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.clock = VirtualClock(start_time)
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceLog()
        self.events_dispatched = 0
        # Causal tracer when causal tracing is enabled (see
        # repro.obs.causal.enable_causal_tracing); None keeps the hot
        # path at a single attribute test per send/deliver/timer.
        self.causal: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def schedule(self, delay: float, callback: Callable[[], None], tag: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.queue.push(self.now + delay, callback, tag=tag)

    def schedule_at(self, time: float, callback: Callable[[], None], tag: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before now ({self.now!r})"
            )
        return self.queue.push(time, callback, tag=tag)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event; returns whether it was still live."""
        return self.queue.cancel(handle)

    def step(self) -> bool:
        """Dispatch the next event, advancing the clock to its timestamp.

        Returns ``False`` when the queue is empty.
        """
        try:
            time, _tag, callback = self.queue.pop()
        except IndexError:
            return False
        self.clock.advance_to(time)
        self.events_dispatched += 1
        callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been dispatched in this call.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the queue drained earlier, so
        periodic measurements see consistent end times.  Returns the
        number of events dispatched by this call.
        """
        dispatched = 0
        # Inlined hot loop: pop_if does the peek and the pop in one heap
        # inspection, and the clock/counter accesses are hoisted out of
        # the attribute-lookup chain.
        pop_if = self.queue.pop_if
        advance_to = self.clock.advance_to
        while True:
            if max_events is not None and dispatched >= max_events:
                break
            popped = pop_if(until)
            if popped is None:
                break
            time, _tag, callback = popped
            advance_to(time)
            dispatched += 1
            callback()
        self.events_dispatched += dispatched
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return dispatched

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={len(self.queue)}, "
            f"dispatched={self.events_dispatched})"
        )


__all__ = ["Simulator", "SimulationError"]
