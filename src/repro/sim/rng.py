"""Deterministic named random streams.

Every consumer of randomness in the reproduction (a node's protocol
logic, the network loss model, a workload generator) asks the registry
for a *named* stream.  Stream state is derived from ``(root_seed, name)``
with SHA-256, so:

* two runs with the same root seed produce identical behaviour, and
* adding a new consumer does not perturb the draws seen by existing
  consumers (unlike sharing one ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* object so
        stream state advances across call sites that share a name.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at ``(root_seed, name)``.

        Used to give an isolated, reproducible randomness universe to a
        sub-simulation (e.g. the model checker exploring a snapshot).
        """
        return RngRegistry(derive_seed(self.root_seed, name))

    def __repr__(self) -> str:
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"


__all__ = ["RngRegistry", "derive_seed"]
