"""Node liveness registry and failure injection.

The case study in the paper fails an entire subtree of the overlay
(about half the nodes) and lets it rejoin.  :class:`LivenessRegistry`
is the single source of truth for which nodes are up: the network
consults it before delivering, and services consult it before acting.
Observers (e.g. a service's failure detector) can subscribe to
transitions.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List, Optional, Set

Observer = Callable[[int, bool], None]


class LivenessRegistry:
    """Tracks which node ids are currently up.

    Nodes are up by default; :meth:`fail` and :meth:`recover` flip the
    state and notify observers with ``(node_id, is_up)``.  ``trace`` (a
    :class:`~repro.sim.trace.TraceLog`, attached by the network) is
    where misbehaving observers are reported; :attr:`crash_counts`
    records how many times each node has failed, which crash-recovery
    experiments read to distinguish first boots from re-incarnations.
    """

    def __init__(self, trace=None) -> None:
        self._down: Set[int] = set()
        self._observers: List[Observer] = []
        self.trace = trace
        self.clock: Optional[Callable[[], float]] = None
        self.crash_counts: Counter = Counter()
        self.notify_errors = 0

    def is_up(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently up."""
        return node_id not in self._down

    @property
    def down_nodes(self) -> Set[int]:
        """A copy of the set of currently-failed node ids."""
        return set(self._down)

    def fail(self, node_id: int) -> None:
        """Mark ``node_id`` as crashed; no-op if already down."""
        if node_id in self._down:
            return
        self._down.add(node_id)
        self.crash_counts[node_id] += 1
        self._notify(node_id, False)

    def recover(self, node_id: int) -> None:
        """Mark ``node_id`` as up again; no-op if already up."""
        if node_id not in self._down:
            return
        self._down.discard(node_id)
        self._notify(node_id, True)

    def fail_many(self, node_ids) -> None:
        """Fail each id in ``node_ids`` (ordered, for deterministic traces)."""
        for node_id in node_ids:
            self.fail(node_id)

    def recover_many(self, node_ids) -> None:
        """Recover each id in ``node_ids``."""
        for node_id in node_ids:
            self.recover(node_id)

    def subscribe(self, observer: Observer) -> None:
        """Register a callback invoked as ``observer(node_id, is_up)``."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Observer) -> bool:
        """Remove a previously-subscribed observer.

        Returns whether it was subscribed (removing an unknown observer
        is a harmless no-op, so teardown paths need no bookkeeping).
        """
        try:
            self._observers.remove(observer)
            return True
        except ValueError:
            return False

    def _notify(self, node_id: int, is_up: bool) -> None:
        # One raising observer (a buggy failure detector) must not wedge
        # the registry or starve observers registered after it: the
        # error is traced and notification continues.
        for observer in list(self._observers):
            try:
                observer(node_id, is_up)
            except Exception as exc:  # noqa: BLE001 — isolate observers
                self.notify_errors += 1
                if self.trace is not None:
                    now = self.clock() if self.clock is not None else 0.0
                    self.trace.record(
                        now, "liveness.observer_error", node=node_id,
                        is_up=is_up, error=f"{type(exc).__name__}: {exc}",
                    )

    def __repr__(self) -> str:
        return f"LivenessRegistry(down={sorted(self._down)})"


__all__ = ["LivenessRegistry"]
