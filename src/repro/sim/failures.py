"""Node liveness registry and failure injection.

The case study in the paper fails an entire subtree of the overlay
(about half the nodes) and lets it rejoin.  :class:`LivenessRegistry`
is the single source of truth for which nodes are up: the network
consults it before delivering, and services consult it before acting.
Observers (e.g. a service's failure detector) can subscribe to
transitions.
"""

from __future__ import annotations

from typing import Callable, List, Set

Observer = Callable[[int, bool], None]


class LivenessRegistry:
    """Tracks which node ids are currently up.

    Nodes are up by default; :meth:`fail` and :meth:`recover` flip the
    state and notify observers with ``(node_id, is_up)``.
    """

    def __init__(self) -> None:
        self._down: Set[int] = set()
        self._observers: List[Observer] = []

    def is_up(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently up."""
        return node_id not in self._down

    @property
    def down_nodes(self) -> Set[int]:
        """A copy of the set of currently-failed node ids."""
        return set(self._down)

    def fail(self, node_id: int) -> None:
        """Mark ``node_id`` as crashed; no-op if already down."""
        if node_id in self._down:
            return
        self._down.add(node_id)
        self._notify(node_id, False)

    def recover(self, node_id: int) -> None:
        """Mark ``node_id`` as up again; no-op if already up."""
        if node_id not in self._down:
            return
        self._down.discard(node_id)
        self._notify(node_id, True)

    def fail_many(self, node_ids) -> None:
        """Fail each id in ``node_ids`` (ordered, for deterministic traces)."""
        for node_id in node_ids:
            self.fail(node_id)

    def recover_many(self, node_ids) -> None:
        """Recover each id in ``node_ids``."""
        for node_id in node_ids:
            self.recover(node_id)

    def subscribe(self, observer: Observer) -> None:
        """Register a callback invoked as ``observer(node_id, is_up)``."""
        self._observers.append(observer)

    def _notify(self, node_id: int, is_up: bool) -> None:
        for observer in list(self._observers):
            observer(node_id, is_up)

    def __repr__(self) -> str:
        return f"LivenessRegistry(down={sorted(self._down)})"


__all__ = ["LivenessRegistry"]
