"""Structured trace log.

Every interesting action in a simulation (message send/deliver/drop,
timer fire, checkpoint exchange, steering decision, choice resolution)
is appended to a :class:`TraceLog` as a :class:`TraceRecord`.  Tests and
benchmarks assert against the trace instead of scraping stdout.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced action.

    ``category`` is a dotted string such as ``"net.deliver"`` or
    ``"runtime.steer"``; ``node`` is the acting node id (or ``None`` for
    global events); ``data`` carries event-specific fields.
    """

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """An append-only in-memory log of :class:`TraceRecord` objects."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._counts: Counter = Counter()

    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time=time, category=category, node=node, data=data))
        self._counts[category] += 1

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: float = 0.0,
    ) -> List[TraceRecord]:
        """Return records matching the filters, in chronological order.

        ``category`` matches exactly or as a dotted prefix: selecting
        ``"net"`` returns ``"net.deliver"`` and ``"net.drop"`` records.
        """
        out = []
        for rec in self._records:
            if rec.time < since:
                continue
            if node is not None and rec.node != node:
                continue
            if category is not None:
                if rec.category != category and not rec.category.startswith(category + "."):
                    continue
            out.append(rec)
        return out

    def count(self, category: str) -> int:
        """Number of records with exactly this category."""
        return self._counts[category]

    def category_counts(self) -> Dict[str, int]:
        """Record counts per exact category (a fresh dict)."""
        return dict(self._counts)

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()
        self._counts.clear()

    def dump_jsonl(self, path: str, category: Optional[str] = None) -> int:
        """Write records (optionally filtered by category prefix) as
        JSON lines; returns the number of records written.

        The format is one object per line with ``time``, ``category``,
        ``node``, and the record's data fields inlined — loadable by
        any log tooling.  A data field whose name collides with one of
        the three envelope fields is preserved under a ``data_`` prefix
        (``data_time``, ``data_node``, ...) instead of being dropped.
        """
        import json

        records = self.select(category=category) if category else self._records
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                row = {"time": record.time, "category": record.category,
                       "node": record.node}
                for key, value in record.data.items():
                    while key in row:
                        key = f"data_{key}"
                    row[key] = _jsonable(value)
                handle.write(json.dumps(row) + "\n")
                written += 1
        return written

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"TraceLog(records={len(self._records)}, enabled={self.enabled})"


def _jsonable(value: Any) -> Any:
    """Best-effort JSON-safe conversion for trace data fields."""
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


__all__ = ["TraceRecord", "TraceLog"]
