"""Structured trace log.

Every interesting action in a simulation (message send/deliver/drop,
timer fire, checkpoint exchange, steering decision, choice resolution)
is appended to a :class:`TraceLog` as a :class:`TraceRecord`.  Tests and
benchmarks assert against the trace instead of scraping stdout.

When causal tracing is enabled (see :mod:`repro.obs.causal`), each
record additionally carries a ``causal`` stamp — event id, trace id,
cause link, and logical clocks.  The stamp lives *outside* ``data`` so
trace digests (computed over time/category/node/data only) are
byte-identical with tracing on or off.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced action.

    ``category`` is a dotted string such as ``"net.deliver"`` or
    ``"runtime.steer"``; ``node`` is the acting node id (or ``None`` for
    global events); ``data`` carries event-specific fields; ``causal``
    is the optional causal stamp (``None`` unless tracing is enabled).
    """

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)
    causal: Optional[Dict[str, Any]] = None


class TraceLog:
    """An append-only in-memory log of :class:`TraceRecord` objects.

    ``max_records`` turns the log into a ring buffer: once more than
    that many records are retained, the oldest are dropped (counted in
    ``dropped_records``).  Category counts stay cumulative over the
    whole run — counters always record, only the record bodies age out.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records!r}")
        self.enabled = enabled
        self.max_records = max_records
        self.dropped_records = 0
        # When causal tracing is on, the tracer supplies a stamp for
        # each appended record (see repro.obs.causal.CausalTracer).
        self.tracer: Optional[Any] = None
        self._records: List[TraceRecord] = []
        # Ring-buffer head: index of the first live record.  Dropping
        # advances the head; the list is compacted once the dead prefix
        # reaches max_records, keeping appends amortized O(1).
        self._start = 0
        self._counts: Counter = Counter()

    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        tracer = self.tracer
        if tracer is None:
            causal = None
        else:
            # Inlined tracer.take_stamp(): this runs once per record on
            # the simulator hot path, and the method call + ambient-dict
            # construction are measurable at that frequency.
            causal = tracer._pending
            if causal is not None:
                tracer._pending = None
            else:
                current = tracer._current
                if current:
                    last = current[-1]
                    causal = {"trace": tracer._trace_ids[last - 1], "in": last}
        self._records.append(
            TraceRecord(time=time, category=category, node=node, data=data,
                        causal=causal)
        )
        self._counts[category] += 1
        if (
            self.max_records is not None
            and len(self._records) - self._start > self.max_records
        ):
            self._start += 1
            self.dropped_records += 1
            if self._start >= self.max_records:
                del self._records[: self._start]
                self._start = 0

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: float = 0.0,
    ) -> List[TraceRecord]:
        """Return records matching the filters, in chronological order.

        ``category`` matches exactly or as a dotted prefix: selecting
        ``"net"`` returns ``"net.deliver"`` and ``"net.drop"`` records.
        Records are appended in nondecreasing time order (the simulated
        clock never runs backwards), so ``since`` binary-searches to its
        start position instead of scanning from the head.
        """
        lo = self._start
        if since > 0.0:
            lo = bisect_left(self._records, since, lo=lo, key=lambda r: r.time)
        out = []
        for index in range(lo, len(self._records)):
            rec = self._records[index]
            if node is not None and rec.node != node:
                continue
            if category is not None:
                if rec.category != category and not rec.category.startswith(category + "."):
                    continue
            out.append(rec)
        return out

    def count(self, category: str) -> int:
        """Number of records with exactly this category (cumulative —
        ring-buffer eviction does not decrement)."""
        return self._counts[category]

    def category_counts(self) -> Dict[str, int]:
        """Record counts per exact category (a fresh dict)."""
        return dict(self._counts)

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()
        self._start = 0
        self.dropped_records = 0
        self._counts.clear()

    def dump_jsonl(self, path: str, category: Optional[str] = None) -> int:
        """Write records (optionally filtered by category prefix) as
        JSON lines; returns the number of records written.

        The format is one object per line with ``time``, ``category``,
        ``node``, the causal stamp under ``causal`` (when present), and
        the record's data fields inlined — loadable by any log tooling.
        A data field whose name collides with one of the envelope
        fields is preserved under a ``data_`` prefix (``data_time``,
        ``data_node``, ...) instead of being dropped.
        """
        import json

        records = self.select(category=category) if category else self._live_records()
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                row = {"time": record.time, "category": record.category,
                       "node": record.node}
                if record.causal is not None:
                    row["causal"] = _jsonable(record.causal)
                for key, value in record.data.items():
                    while key in row:
                        key = f"data_{key}"
                    row[key] = _jsonable(value)
                handle.write(json.dumps(row) + "\n")
                written += 1
        return written

    def _live_records(self) -> List[TraceRecord]:
        return self._records[self._start:] if self._start else self._records

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._live_records())

    def __len__(self) -> int:
        return len(self._records) - self._start

    def __repr__(self) -> str:
        return f"TraceLog(records={len(self)}, enabled={self.enabled})"


def _jsonable(value: Any) -> Any:
    """Best-effort JSON-safe conversion for trace data fields."""
    import dataclasses

    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Messages (and other dataclass payloads) render as typed field
        # dicts, not reprs, so JSONL dumps round-trip through json.loads.
        # Duck-typed msg_type() avoids importing repro.statemachine here.
        msg_type = getattr(value, "msg_type", None)
        label = msg_type() if callable(msg_type) else type(value).__name__
        row: Dict[str, Any] = {"type": label}
        for f in dataclasses.fields(value):
            key = f.name
            while key in row:
                key = f"field_{key}"
            row[key] = _jsonable(getattr(value, f.name))
        return row
    return repr(value)


__all__ = ["TraceRecord", "TraceLog"]
