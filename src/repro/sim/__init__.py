"""Deterministic discrete-event simulation substrate.

This package replaces the paper's live ModelNet cluster: a virtual
clock, a cancellable event queue, named seeded random streams, a
structured trace log, and node failure injection.  See DESIGN.md
section 2 for the substitution rationale.
"""

from .clock import ClockError, VirtualClock
from .events import EventHandle, EventQueue
from .failures import LivenessRegistry
from .rng import RngRegistry, derive_seed
from .scheduler import SimulationError, Simulator
from .trace import TraceLog, TraceRecord

__all__ = [
    "ClockError",
    "VirtualClock",
    "EventHandle",
    "EventQueue",
    "LivenessRegistry",
    "RngRegistry",
    "derive_seed",
    "SimulationError",
    "Simulator",
    "TraceLog",
    "TraceRecord",
]
