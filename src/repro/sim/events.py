"""Event queue for the discrete-event simulator.

Events are callbacks scheduled at a simulated timestamp.  Ordering is
total and deterministic: ties on time are broken by insertion sequence
number, so two runs with the same schedule produce identical event
orders.  Cancellation is O(1) via tombstoning.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`.

    Holds enough information to cancel the event and to introspect it in
    traces; the callback itself lives in the queue entry.
    """

    time: float
    seq: int
    tag: str


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A cancellable priority queue of timed callbacks."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._live = 0
        self._entries: dict[tuple[float, int], _Entry] = {}

    def push(self, time: float, callback: Callable[[], None], tag: str = "") -> EventHandle:
        """Schedule ``callback`` at simulated ``time`` and return a handle."""
        seq = next(self._seq)
        entry = _Entry(time=float(time), seq=seq, callback=callback, tag=tag)
        heapq.heappush(self._heap, entry)
        self._entries[(entry.time, seq)] = entry
        self._live += 1
        return EventHandle(time=entry.time, seq=seq, tag=tag)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.

        Returns ``True`` if the event was live and is now cancelled,
        ``False`` if it already fired or was already cancelled.
        """
        entry = self._entries.get((handle.time, handle.seq))
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        self._live -= 1
        return True

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> tuple[float, str, Callable[[], None]]:
        """Remove and return the next live event as ``(time, tag, callback)``.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        entry = heapq.heappop(self._heap)
        del self._entries[(entry.time, entry.seq)]
        self._live -= 1
        return entry.time, entry.tag, entry.callback

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            entry = heapq.heappop(self._heap)
            del self._entries[(entry.time, entry.seq)]

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:
        return f"EventQueue(live={self._live})"


__all__ = ["EventHandle", "EventQueue"]
