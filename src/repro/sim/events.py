"""Event queue for the discrete-event simulator.

Events are callbacks scheduled at a simulated timestamp.  Ordering is
total and deterministic: ties on time are broken by insertion sequence
number, so two runs with the same schedule produce identical event
orders.  Cancellation is O(1) via tombstoning.

The entry representation is tuned for the hot loop (this queue absorbs
every message delivery and timer in a simulation, and worlds now reach
thousands of nodes):

* an entry is a plain 4-slot list ``[time, seq, callback, tag]`` —
  heap comparisons stop at the unique ``seq``, so the callback is never
  compared and no dataclass ordering protocol runs;
* the handle returned by :meth:`push` holds the entry itself, so
  :meth:`cancel` needs no side dict keyed by ``(time, seq)`` (the seed
  implementation paid one dict insert + delete per event);
* a cancelled entry just has its callback slot set to ``None``;
  tombstones are dropped lazily at pop time and compacted in batch
  once they dominate the heap, keeping cancel-heavy workloads (timer
  re-arms, retransmission timers) from bloating it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

_TIME = 0
_SEQ = 1
_CALLBACK = 2
_TAG = 3

# Compact the heap once at least this many tombstones have accumulated
# AND they outnumber the live entries.  The floor keeps tiny queues from
# compacting on every cancel; the ratio bounds wasted memory at 2x.
_COMPACT_MIN_DEAD = 512


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`.

    Holds the queue entry itself, which is what makes cancellation O(1)
    without any auxiliary index; ``time``/``seq``/``tag`` are exposed
    for introspection and traces.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def tag(self) -> str:
        return self._entry[_TAG]

    def __repr__(self) -> str:
        state = "cancelled/fired" if self._entry[_CALLBACK] is None else "live"
        return f"EventHandle(time={self.time!r}, seq={self.seq}, tag={self.tag!r}, {state})"


class EventQueue:
    """A cancellable priority queue of timed callbacks."""

    __slots__ = ("_heap", "_next_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0

    def push(self, time: float, callback: Callable[[], None], tag: str = "") -> EventHandle:
        """Schedule ``callback`` at simulated ``time`` and return a handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [float(time), seq, callback, tag]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.

        Returns ``True`` if the event was live and is now cancelled,
        ``False`` if it already fired or was already cancelled.
        """
        entry = handle._entry
        if entry[_CALLBACK] is None:
            return False
        entry[_CALLBACK] = None
        self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()
        return True

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][_TIME]

    def pop(self) -> Tuple[float, str, Callable[[], None]]:
        """Remove and return the next live event as ``(time, tag, callback)``.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                self._dead -= 1
                continue
            entry[_CALLBACK] = None  # a popped handle can no longer cancel
            self._live -= 1
            return entry[_TIME], entry[_TAG], callback
        raise IndexError("pop from empty EventQueue")

    def pop_if(self, max_time: Optional[float] = None):
        """Pop the next live event if its time is ``<= max_time``.

        Returns ``(time, tag, callback)`` or ``None`` when the queue is
        empty or the next event lies beyond ``max_time``.  This is the
        scheduler's run-loop fast path: one heap inspection instead of a
        peek followed by a pop.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if max_time is not None and entry[_TIME] > max_time:
                return None
            heapq.heappop(heap)
            callback = entry[_CALLBACK]
            entry[_CALLBACK] = None
            self._live -= 1
            return entry[_TIME], entry[_TAG], callback
        return None

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (batched, amortized)."""
        self._heap = [entry for entry in self._heap if entry[_CALLBACK] is not None]
        heapq.heapify(self._heap)
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:
        return f"EventQueue(live={self._live}, tombstones={self._dead})"


__all__ = ["EventHandle", "EventQueue"]
