"""Adversarial message-level fault injection.

The base network models *benign* imperfection: latency, bandwidth,
independent loss, clean crash-stop.  Real deployments also face the
adversarial end of the spectrum — duplicated and reordered datagrams,
flapping links, corrupted payloads — and CrystalBall's claim is that a
predictive runtime keeps protocols safe under exactly this adversity.

:class:`LinkChaos` is a *fault interposer*: the transport consults it on
every send (``Network.add_fault_interposer``) and applies the returned
:class:`FaultDecision` — drop, duplicate, delay (reorder), or payload
replacement.  All randomness flows through named RNG streams of the
simulator (``chaos.drop``, ``chaos.duplicate``, ...), so a chaos run is
a pure function of ``(configuration, seed)`` and every trace is
replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs import MetricsRegistry, stats_view


class ChaosError(ValueError):
    """Raised for invalid fault configurations.

    A :class:`ValueError` subclass so callers validating plans and
    events can catch either the chaos-specific type or the plain
    built-in — invalid schedules fail fast at construction/arm time
    with a clear message instead of deep inside the controller.
    """


@dataclass
class FaultDecision:
    """What the fault layer does to one send.

    ``duplicates`` extra copies are delivered ``duplicate_delays``
    seconds after the primary copy; ``extra_delay`` displaces the
    primary copy itself (the transport treats a displaced reliable
    message as reordered: it skips the FIFO in-order clamp).
    ``replace`` substitutes the delivered payload (corruption marker).
    """

    drop: bool = False
    reason: str = "chaos"
    duplicates: int = 0
    duplicate_delays: Tuple[float, ...] = ()
    extra_delay: float = 0.0
    replace: Any = None


@dataclass
class CorruptedPayload:
    """Marker delivered in place of a corrupted message.

    Services have no handler registered for it, so dispatch falls into
    the unhandled-message path (traced and ignored) — the corruption is
    *detected* at the application boundary, modelling a checksum-failed
    datagram rather than silent bit-rot.
    """

    original_type: str
    src: int
    dst: int


@dataclass(frozen=True)
class LinkFaultProfile:
    """Per-link fault probabilities.

    :param drop: probability a message is silently dropped.
    :param duplicate: probability one extra copy is delivered.
    :param reorder: probability the message is displaced by a uniform
        extra delay in ``(0, reorder_jitter]`` (bounded jitter), which
        lets it overtake or be overtaken by neighbouring traffic.
    :param corrupt: probability the payload is replaced by a
        :class:`CorruptedPayload` marker.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_jitter: float = 0.05
    corrupt: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ChaosError(f"{name} probability must be in [0, 1), got {p!r}")
        if self.reorder_jitter <= 0.0:
            raise ChaosError(f"reorder_jitter must be positive, got {self.reorder_jitter!r}")

    @property
    def is_null(self) -> bool:
        return not (self.drop or self.duplicate or self.reorder or self.corrupt)


NULL_PROFILE = LinkFaultProfile()


@dataclass(frozen=True)
class FlapSpec:
    """A periodically failing (flapping) link.

    From ``start`` until ``until`` (forever when ``None``), the link is
    down for the first ``duty`` fraction of every ``period`` seconds —
    a deterministic function of simulated time, so flap schedules need
    no event-queue traffic and replay exactly.
    """

    a: int
    b: int
    start: float = 0.0
    period: float = 2.0
    duty: float = 0.5
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ChaosError(f"flap period must be positive, got {self.period!r}")
        if not 0.0 < self.duty < 1.0:
            raise ChaosError(f"flap duty must be in (0, 1), got {self.duty!r}")

    def is_down(self, now: float) -> bool:
        """Whether the link is in a down-phase at simulated ``now``."""
        if now < self.start or (self.until is not None and now >= self.until):
            return False
        return (now - self.start) % self.period < self.duty * self.period


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class LinkChaos:
    """Per-link fault interposer driven by named RNG streams.

    One instance is installed on the network; profiles can target a
    default (all links) plus per-pair overrides, flaps are registered
    per unordered pair, and slow nodes add a fixed processing delay to
    every message *toward* them.
    """

    def __init__(self, sim, metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.default_profile: LinkFaultProfile = NULL_PROFILE
        self._profiles: Dict[Tuple[int, int], LinkFaultProfile] = {}
        self._flaps: List[FlapSpec] = []
        self._slow: Dict[int, float] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = stats_view(
            self.metrics, "chaos",
            ("dropped", "duplicated", "reordered", "corrupted", "flap_dropped"),
        )

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def set_profile(
        self,
        profile: LinkFaultProfile,
        a: Optional[int] = None,
        b: Optional[int] = None,
    ) -> None:
        """Install ``profile`` for the unordered pair ``(a, b)``, or as
        the default for every link when no pair is given."""
        if a is None or b is None:
            if (a is None) != (b is None):
                raise ChaosError("give both endpoints or neither")
            self.default_profile = profile
            return
        self._profiles[_pair(a, b)] = profile

    def profile_for(self, a: int, b: int) -> LinkFaultProfile:
        """The effective profile on the ``(a, b)`` link."""
        return self._profiles.get(_pair(a, b), self.default_profile)

    def add_flap(self, flap: FlapSpec) -> None:
        """Register a flapping link."""
        self._flaps.append(flap)

    def set_slow(self, node_id: int, delay: Optional[float]) -> None:
        """Add ``delay`` seconds to every delivery toward ``node_id``
        (``None`` clears the slowdown)."""
        if delay is None:
            self._slow.pop(node_id, None)
        elif delay < 0:
            raise ChaosError(f"slow-node delay must be non-negative, got {delay!r}")
        else:
            self._slow[node_id] = delay

    def slow_delay(self, node_id: int) -> float:
        """Current processing slowdown toward ``node_id``."""
        return self._slow.get(node_id, 0.0)

    # ------------------------------------------------------------------
    # The interposer hook (called by Network.send)
    # ------------------------------------------------------------------

    def apply(self, src: int, dst: int, payload: Any, now: float) -> Optional[FaultDecision]:
        """Decide the fate of one send; ``None`` means untouched."""
        with self.metrics.span("chaos.apply", clock=self._sim_clock):
            return self._apply(src, dst, payload, now)

    def _sim_clock(self) -> float:
        return self.sim.now

    def _apply(self, src: int, dst: int, payload: Any, now: float) -> Optional[FaultDecision]:
        for flap in self._flaps:
            if _pair(src, dst) == _pair(flap.a, flap.b) and flap.is_down(now):
                self.stats["flap_dropped"] += 1
                self.sim.trace.record(now, "chaos.flap", node=src, dst=dst)
                return FaultDecision(drop=True, reason="chaos-flap")

        profile = self.profile_for(src, dst)
        extra_delay = 0.0
        slow = self._slow.get(dst, 0.0)
        decision: Optional[FaultDecision] = None
        if not profile.is_null:
            if profile.drop and self.sim.rng.stream("chaos.drop").random() < profile.drop:
                self.stats["dropped"] += 1
                self.sim.trace.record(now, "chaos.drop", node=src, dst=dst,
                                      kind=type(payload).__name__)
                return FaultDecision(drop=True, reason="chaos-drop")
            decision = FaultDecision()
            if profile.duplicate and self.sim.rng.stream("chaos.duplicate").random() < profile.duplicate:
                rng = self.sim.rng.stream("chaos.duplicate")
                decision.duplicates = 1
                decision.duplicate_delays = (rng.uniform(0.0, profile.reorder_jitter),)
                self.stats["duplicated"] += 1
                self.sim.trace.record(now, "chaos.duplicate", node=src, dst=dst,
                                      kind=type(payload).__name__)
            if profile.reorder and self.sim.rng.stream("chaos.reorder").random() < profile.reorder:
                extra_delay += self.sim.rng.stream("chaos.reorder").uniform(
                    0.0, profile.reorder_jitter,
                )
                self.stats["reordered"] += 1
                self.sim.trace.record(now, "chaos.reorder", node=src, dst=dst,
                                      kind=type(payload).__name__)
            if profile.corrupt and self.sim.rng.stream("chaos.corrupt").random() < profile.corrupt:
                decision.replace = CorruptedPayload(
                    original_type=type(payload).__name__, src=src, dst=dst,
                )
                self.stats["corrupted"] += 1
                self.sim.trace.record(now, "chaos.corrupt", node=src, dst=dst,
                                      kind=type(payload).__name__)
        if slow > 0.0:
            extra_delay += slow
        if decision is None and extra_delay == 0.0:
            return None
        if decision is None:
            decision = FaultDecision()
        decision.extra_delay = extra_delay
        return decision

    def __repr__(self) -> str:
        return (
            f"LinkChaos(profiles={len(self._profiles)}, flaps={len(self._flaps)}, "
            f"slow={sorted(self._slow)}, stats={self.stats})"
        )


__all__ = [
    "ChaosError",
    "FaultDecision",
    "CorruptedPayload",
    "LinkFaultProfile",
    "NULL_PROFILE",
    "FlapSpec",
    "LinkChaos",
]
