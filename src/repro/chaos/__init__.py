"""Deterministic adversarial fault injection (the chaos engine).

Layered on the seeded DES: per-link fault interposers (drop, duplicate,
reorder, corrupt, flap), crash-recovery with state amnesia, slow nodes
and clock skew, a declarative :class:`FaultPlan` schedule, and an
opt-in at-least-once reliable-delivery transport.  Every chaos run is a
pure function of ``(configuration, seed)``.
"""

from .controller import ChaosController
from .faults import (
    ChaosError,
    CorruptedPayload,
    FaultDecision,
    FlapSpec,
    LinkChaos,
    LinkFaultProfile,
    NULL_PROFILE,
)
from .plan import (
    ClockSkewEvent,
    CrashEvent,
    FaultEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    SlowNodeEvent,
    plan_rng,
    random_fault_plan,
)
from .reliable import (
    AckEnvelope,
    DataEnvelope,
    ReliabilityConfig,
    ReliableLayer,
    reliable_transport,
)

__all__ = [
    "ChaosController",
    "ChaosError",
    "CorruptedPayload",
    "FaultDecision",
    "FlapSpec",
    "LinkChaos",
    "LinkFaultProfile",
    "NULL_PROFILE",
    "ClockSkewEvent",
    "CrashEvent",
    "FaultEvent",
    "FaultPlan",
    "FlapEvent",
    "LinkFaultEvent",
    "PartitionEvent",
    "SlowNodeEvent",
    "plan_rng",
    "random_fault_plan",
    "AckEnvelope",
    "DataEnvelope",
    "ReliabilityConfig",
    "ReliableLayer",
    "reliable_transport",
]
