"""At-least-once delivery over the chaotic transport.

The base ``Network`` models TCP-like reliability as *delay* (loss turns
into retransmission latency), which the chaos layer deliberately
subverts: injected drops, duplicates, and flaps lose messages outright.
:class:`ReliableLayer` restores end-to-end delivery on top — the
classic ack/retry protocol:

* every data payload rides in a :class:`DataEnvelope` with a per-sender
  sequence number;
* the receiver acks each envelope (acks are themselves unreliable —
  retries cover ack loss) and suppresses duplicates by ``(src, seq)``;
* the sender retransmits on timeout with exponential backoff until
  acked or ``max_retries`` is exhausted.

The layer presents the same ``attach``/``send`` surface as ``Network``
(everything else delegates), so a cluster can opt in by wrapping its
transport — services and the CrystalBall runtime are untouched.  All
timers run on the deterministic simulator; a run with the reliability
layer is as replayable as one without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..net.transport import DEFAULT_MESSAGE_BYTES
from ..obs import MetricsRegistry, stats_view

ENVELOPE_OVERHEAD_BYTES = 40
ACK_SIZE_BYTES = 64


@dataclass
class DataEnvelope:
    """A payload wrapped for at-least-once delivery."""

    seq: int
    payload: Any


@dataclass
class AckEnvelope:
    """Acknowledgement of ``seq`` from the receiver."""

    seq: int


@dataclass(frozen=True)
class ReliabilityConfig:
    """Retry policy for :class:`ReliableLayer`."""

    timeout: float = 0.3
    backoff: float = 2.0
    max_retries: int = 6

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")


@dataclass
class _Pending:
    payload: Any
    size_bytes: int
    attempts: int = 0
    # The live retry/lastwait timer for this send; cancelled on ack so
    # the simulator queue does not accumulate dead retry events.
    timer: Optional[Any] = None
    # Causal event of the dispatch that issued the send (when causal
    # tracing is on): retransmissions re-enter this scope, so every
    # attempt shares the original trace id and cause.
    cause: Optional[int] = None


class ReliableLayer:
    """Ack/retry/dedup adapter with the ``Network`` surface.

    Dedup state is kept in the layer (a stable "NIC" below the service),
    so it survives node crashes — recovered nodes do not re-deliver old
    messages even after amnesia.  Unreliable (datagram) sends pass
    through unwrapped.
    """

    def __init__(
        self,
        network,
        config: Optional[ReliabilityConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._network = network
        self.config = config if config is not None else ReliabilityConfig()
        self._next_seq: Dict[int, int] = {}
        self._pending: Dict[Tuple[int, int, int], _Pending] = {}
        self._seen: Dict[int, Set[Tuple[int, int]]] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = stats_view(
            self.metrics, "reliable",
            ("sent", "acked", "retransmissions", "duplicates_suppressed",
             "gave_up"),
        )

    def __getattr__(self, name: str) -> Any:
        # Everything not overridden (liveness, topology, sim, partitions,
        # break_connection, counters, ...) is the raw network's.
        return getattr(self._network, name)

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------

    def attach(
        self,
        node_id: int,
        on_message: Callable[[int, int, Any], None],
        on_broken: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Attach with ack/dedup handling wrapped around ``on_message``."""
        self._seen.setdefault(node_id, set())

        def wrapped(src: int, dst: int, payload: Any) -> None:
            self._on_message(on_message, src, dst, payload)

        self._network.attach(node_id, wrapped, on_broken)

    def detach(self, node_id: int) -> None:
        self._network.detach(node_id)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size_bytes: int = DEFAULT_MESSAGE_BYTES,
        reliable: bool = True,
    ) -> bool:
        """Send with at-least-once semantics (``reliable=False`` passes
        through as a plain datagram)."""
        if not reliable:
            return self._network.send(src, dst, payload, size_bytes=size_bytes,
                                      reliable=False)
        seq = self._next_seq.get(src, 0)
        self._next_seq[src] = seq + 1
        key = (src, dst, seq)
        pending = _Pending(payload=payload, size_bytes=size_bytes)
        tracer = self._network.sim.causal
        if tracer is not None:
            pending.cause = tracer.current_event_id()
        self._pending[key] = pending
        self.stats["sent"] += 1
        self._transmit(key)
        return True

    def _transmit(self, key: Tuple[int, int, int]) -> None:
        pending = self._pending.get(key)
        if pending is None:
            return
        src, dst, seq = key
        if not self._network.liveness.is_up(src):
            # The sender crashed: its outbox dies with it.  Application
            # protocols re-issue requests after recovery.
            self._pending.pop(key, None)
            self._network.sim.trace.record(
                self._network.sim.now, "reliable.abandoned", node=src, dst=dst, seq=seq,
            )
            return
        pending.attempts += 1
        if pending.attempts > 1:
            self.stats["retransmissions"] += 1
        tracer = self._network.sim.causal
        if tracer is None:
            self._transmit_wire(key, pending)
        else:
            # Retransmissions re-enter the original send's causal scope:
            # same trace id and cause, a fresh attempt number — so a
            # late duplicate is attributable to the send that mattered.
            with tracer.resumed(pending.cause, attempt=pending.attempts):
                self._transmit_wire(key, pending)
        if pending.attempts > self.config.max_retries:
            # This was the last shot; if the ack never comes, give up.
            pending.timer = self._network.sim.schedule(
                self._retry_delay(pending.attempts),
                lambda: self._give_up(key),
                tag=f"reliable.lastwait:{src}->{dst}",
            )
            return
        pending.timer = self._network.sim.schedule(
            self._retry_delay(pending.attempts),
            lambda: self._transmit(key),
            tag=f"reliable.retry:{src}->{dst}",
        )

    def _transmit_wire(self, key: Tuple[int, int, int], pending: _Pending) -> None:
        """Put one (re)transmission attempt on the wire."""
        src, dst, seq = key
        if pending.attempts > 1:
            self._network.sim.trace.record(
                self._network.sim.now, "net.retry", node=src,
                dst=dst, seq=seq, attempt=pending.attempts,
            )
        self._network.send(
            src, dst, DataEnvelope(seq=seq, payload=pending.payload),
            size_bytes=pending.size_bytes + ENVELOPE_OVERHEAD_BYTES,
            reliable=False,
        )

    def _retry_delay(self, attempts: int) -> float:
        return self.config.timeout * (self.config.backoff ** (attempts - 1))

    def _give_up(self, key: Tuple[int, int, int]) -> None:
        if self._pending.pop(key, None) is None:
            return
        src, dst, seq = key
        self.stats["gave_up"] += 1
        self._network.sim.trace.record(
            self._network.sim.now, "reliable.give_up", node=src, dst=dst, seq=seq,
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_message(
        self,
        user_cb: Callable[[int, int, Any], None],
        src: int,
        dst: int,
        payload: Any,
    ) -> None:
        if isinstance(payload, AckEnvelope):
            acked = self._pending.pop((dst, src, payload.seq), None)
            if acked is not None:
                self.stats["acked"] += 1
                if acked.timer is not None:
                    # Without this cancel, every acked send leaves one
                    # dead retry event in the simulator queue.
                    self._network.sim.cancel(acked.timer)
                    acked.timer = None
            return
        if isinstance(payload, DataEnvelope):
            # Ack every copy — the first ack may have been lost.
            self._network.send(dst, src, AckEnvelope(seq=payload.seq),
                               size_bytes=ACK_SIZE_BYTES, reliable=False)
            dedup_key = (src, payload.seq)
            seen = self._seen.setdefault(dst, set())
            if dedup_key in seen:
                self.stats["duplicates_suppressed"] += 1
                self._network.sim.trace.record(
                    self._network.sim.now, "reliable.dup_suppressed", node=dst,
                    src=src, seq=payload.seq,
                )
                return
            seen.add(dedup_key)
            user_cb(src, dst, payload.payload)
            return
        # Traffic from endpoints not using the layer passes through.
        user_cb(src, dst, payload)

    @property
    def pending_count(self) -> int:
        """Sends still awaiting acknowledgement."""
        return len(self._pending)

    def __repr__(self) -> str:
        return f"ReliableLayer(pending={len(self._pending)}, stats={self.stats})"


def reliable_transport(config: Optional[ReliabilityConfig] = None):
    """A ``transport_wrapper`` for ``Cluster``: wrap the network in a
    :class:`ReliableLayer` with ``config``."""
    def wrap(network):
        return ReliableLayer(network, config)
    return wrap


__all__ = [
    "DataEnvelope",
    "AckEnvelope",
    "ReliabilityConfig",
    "ReliableLayer",
    "reliable_transport",
    "ENVELOPE_OVERHEAD_BYTES",
    "ACK_SIZE_BYTES",
]
