"""The chaos controller: arms a :class:`FaultPlan` against a cluster.

The controller owns one :class:`~repro.chaos.faults.LinkChaos`
interposer (installed on the cluster's raw network), schedules every
plan event on the deterministic simulator, and models stable storage
for crash-recovery: while a node is up its state is snapshotted every
``checkpoint_period`` simulated seconds, and a non-amnesia recovery
restores the last snapshot — everything since is lost, which is the
adversity the recovery protocol must absorb.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .faults import FlapSpec, LinkChaos, LinkFaultProfile
from .plan import (
    ClockSkewEvent,
    CrashEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    SlowNodeEvent,
)


class ChaosController:
    """Drives a fault plan against a live cluster.

    ``cluster`` is any object with ``sim``, ``network`` (the raw
    :class:`~repro.net.Network`), and ``nodes`` (indexable by id) — a
    :class:`~repro.statemachine.Cluster` in practice.
    """

    def __init__(
        self,
        cluster,
        plan: Optional[FaultPlan] = None,
        checkpoint_period: float = 0.0,
        link_chaos: Optional[LinkChaos] = None,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.plan = plan if plan is not None else FaultPlan()
        self.checkpoint_period = checkpoint_period
        self.link_chaos = link_chaos if link_chaos is not None else LinkChaos(self.sim)
        self.network.add_fault_interposer(self.link_chaos)
        self._saved_checkpoints: Dict[int, Any] = {}
        self._armed = False

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every plan event (idempotent; call before running).

        Validates the plan against the cluster first: an event naming a
        node outside the world raises :class:`ChaosError` here, not an
        ``IndexError`` mid-run.
        """
        if self._armed:
            return
        self.plan.validate(n_nodes=len(self.cluster.nodes))
        self._armed = True
        for event in self.plan.events:
            self._arm_event(event)
        if self.checkpoint_period > 0:
            self.sim.schedule(
                self.checkpoint_period, self._checkpoint_tick, tag="chaos.checkpoint",
            )

    def _arm_event(self, event) -> None:
        if isinstance(event, PartitionEvent):
            groups = [set(g) for g in event.groups]
            self._at(event.at, lambda: self._partition(groups), "partition")
            if event.heal_at is not None:
                self._at(event.heal_at, self._heal, "heal")
        elif isinstance(event, FlapEvent):
            # Flaps are pure functions of time: register now, active
            # from event.at.
            self.link_chaos.add_flap(FlapSpec(
                a=event.a, b=event.b, start=event.at, period=event.period,
                duty=event.duty, until=event.until,
            ))
            self._at(event.at, lambda: self._trace(
                "chaos.flap_start", a=event.a, b=event.b, period=event.period,
            ), "flap")
        elif isinstance(event, CrashEvent):
            self._at(event.at, lambda: self._crash(event), "crash")
            if event.recover_at is not None:
                self._at(event.recover_at, lambda: self._recover(event), "recover")
        elif isinstance(event, LinkFaultEvent):
            profile = LinkFaultProfile(
                drop=event.drop, duplicate=event.duplicate, reorder=event.reorder,
                reorder_jitter=event.reorder_jitter, corrupt=event.corrupt,
            )
            self._at(event.at, lambda: self._set_profile(event, profile), "link")
        elif isinstance(event, SlowNodeEvent):
            self._at(event.at, lambda: self._slow(event.node, event.delay), "slow")
            if event.until is not None:
                self._at(event.until, lambda: self._slow(event.node, None), "unslow")
        elif isinstance(event, ClockSkewEvent):
            self._at(event.at, lambda: self._skew(event.node, event.offset), "skew")
        else:
            raise TypeError(f"unknown fault event {event!r}")

    def _at(self, time: float, callback, tag: str) -> None:
        self.sim.schedule_at(max(time, self.sim.now), callback, tag=f"chaos.{tag}")

    # ------------------------------------------------------------------
    # Event actions
    # ------------------------------------------------------------------

    def _trace(self, category: str, **data) -> None:
        self.sim.trace.record(self.sim.now, category, **data)

    def _partition(self, groups) -> None:
        self.network.set_partition(groups)
        self._trace("chaos.partition", groups=[sorted(g) for g in groups])

    def _heal(self) -> None:
        self.network.clear_partition()
        self._trace("chaos.heal")

    def _crash(self, event: CrashEvent) -> None:
        node = self.cluster.nodes[event.node]
        if not node.is_up:
            return
        node.crash()
        self._trace("chaos.crash", node_id=event.node, amnesia=event.amnesia)

    def _recover(self, event: CrashEvent) -> None:
        node = self.cluster.nodes[event.node]
        if node.is_up:
            return
        if event.amnesia:
            node.restart(fresh_state=True)
        else:
            # Crash-recovery: restore the last periodic checkpoint.  With
            # no checkpointing configured this degrades to perfect stable
            # storage (resume from the crash-time state) — what protocols
            # like Paxos, whose safety hinges on persisted promises,
            # assume of their acceptors.
            saved = self._saved_checkpoints.get(event.node)
            node.restart(fresh_state=False, checkpoint=saved)
        self._trace("chaos.recover", node_id=event.node, amnesia=event.amnesia,
                    from_checkpoint=not event.amnesia
                    and event.node in self._saved_checkpoints)

    def _set_profile(self, event: LinkFaultEvent, profile: LinkFaultProfile) -> None:
        self.link_chaos.set_profile(profile, event.a, event.b)
        self._trace("chaos.link_profile", a=event.a, b=event.b,
                    drop=profile.drop, duplicate=profile.duplicate,
                    reorder=profile.reorder, corrupt=profile.corrupt)

    def _slow(self, node_id: int, delay) -> None:
        self.link_chaos.set_slow(node_id, delay)
        self._trace("chaos.slow", node_id=node_id, delay=delay)

    def _skew(self, node_id: int, offset: float) -> None:
        self.cluster.nodes[node_id].clock_skew = offset
        self._trace("chaos.skew", node_id=node_id, offset=offset)

    # ------------------------------------------------------------------
    # Stable-storage model for crash-recovery
    # ------------------------------------------------------------------

    def _checkpoint_tick(self) -> None:
        for node in self.cluster.nodes:
            if node.is_up:
                self._saved_checkpoints[node.node_id] = node.service.checkpoint()
        self.sim.schedule(
            self.checkpoint_period, self._checkpoint_tick, tag="chaos.checkpoint",
        )

    def saved_checkpoint(self, node_id: int):
        """The last persisted checkpoint for ``node_id`` (or ``None``)."""
        return self._saved_checkpoints.get(node_id)

    def stats(self) -> Dict[str, int]:
        """Aggregate chaos statistics (link faults injected so far)."""
        return dict(self.link_chaos.stats)

    def __repr__(self) -> str:
        return (
            f"ChaosController(plan={self.plan.name or 'unnamed'!r}, "
            f"events={len(self.plan)}, armed={self._armed})"
        )


__all__ = ["ChaosController"]
