"""Declarative fault schedules: the ``FaultPlan`` DSL.

A :class:`FaultPlan` is a timed list of fault events — partitions that
heal, flapping links, crashes with or without amnesia, per-link fault
probabilities, slow nodes, clock skew — that a
:class:`~repro.chaos.controller.ChaosController` arms against a running
cluster.  Plans load from plain dicts / JSON (the programmatic path the
eval harness and benchmarks use) and from a small line-oriented text
grammar for humans::

    at 5 partition 0,1,2 | 3,4 heal 9
    at 0 flap 3-7 period 2 duty 0.5 until 20
    at 4 crash 12 amnesia recover 8
    at 0 link * drop 0.1 dup 0.05 reorder 0.2 jitter 0.5 corrupt 0.01
    at 2 slow 3 delay 0.2 until 10
    at 0 skew 5 offset 1.5

Everything a plan triggers is scheduled on the deterministic simulator
and all sampling uses named RNG streams, so one ``(plan, seed)`` pair
always produces the identical trace.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from .faults import ChaosError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosError(message)


def _check_times(event: "FaultEvent", *ends: str) -> None:
    """Shared timing rules: non-negative start, ends not before it."""
    _require(event.at >= 0, f"{event.kind} event scheduled before t=0: at={event.at}")
    for attr in ends:
        value = getattr(event, attr)
        if value is not None:
            _require(
                value >= event.at,
                f"{event.kind} event ends before it starts: "
                f"{attr}={value} < at={event.at}",
            )


def _check_node(event: "FaultEvent", *attrs: str) -> None:
    for attr in attrs:
        value = getattr(event, attr)
        if value is not None:
            _require(
                int(value) >= 0,
                f"{event.kind} event targets negative node {attr}={value}",
            )


def _check_prob(event: "FaultEvent", *attrs: str) -> None:
    for attr in attrs:
        value = getattr(event, attr)
        _require(
            0.0 <= value <= 1.0,
            f"{event.kind} event {attr}={value} outside [0, 1]",
        )


@dataclass(frozen=True)
class PartitionEvent:
    """Split the network into ``groups`` at ``at``; heal at ``heal_at``."""

    at: float
    groups: Tuple[Tuple[int, ...], ...]
    heal_at: Optional[float] = None

    kind = "partition"

    def __post_init__(self) -> None:
        _check_times(self, "heal_at")
        _require(len(self.groups) >= 1, "partition needs at least one group")
        seen: set = set()
        for group in self.groups:
            _require(len(group) >= 1, "partition group is empty")
            for member in group:
                _require(int(member) >= 0,
                         f"partition group contains negative node {member}")
                _require(member not in seen,
                         f"node {member} appears in two partition groups")
                seen.add(member)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at,
                "groups": [list(g) for g in self.groups], "heal_at": self.heal_at}

    def nodes_touched(self) -> Tuple[int, ...]:
        return tuple(n for g in self.groups for n in g)


@dataclass(frozen=True)
class FlapEvent:
    """Flap the ``a``–``b`` link: down for ``duty`` of every ``period``."""

    at: float
    a: int
    b: int
    period: float
    duty: float = 0.5
    until: Optional[float] = None

    kind = "flap"

    def __post_init__(self) -> None:
        _check_times(self, "until")
        _check_node(self, "a", "b")
        _require(self.a != self.b, f"flap link {self.a}-{self.b} is a self-loop")
        _require(self.period > 0, f"flap period must be positive, got {self.period}")
        _require(0.0 <= self.duty <= 1.0, f"flap duty={self.duty} outside [0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "link": [self.a, self.b],
                "period": self.period, "duty": self.duty, "until": self.until}

    def nodes_touched(self) -> Tuple[int, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``node`` at ``at``.

    With ``amnesia`` the node recovers from scratch (initial state);
    without, it recovers from its last persisted checkpoint (losing
    whatever happened since — the crash-recovery window).  ``recover_at``
    of ``None`` means the node stays down.
    """

    at: float
    node: int
    amnesia: bool = False
    recover_at: Optional[float] = None

    kind = "crash"

    def __post_init__(self) -> None:
        _check_times(self, "recover_at")
        _check_node(self, "node")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "node": self.node,
                "amnesia": self.amnesia, "recover_at": self.recover_at}

    def nodes_touched(self) -> Tuple[int, ...]:
        return (self.node,)


@dataclass(frozen=True)
class LinkFaultEvent:
    """Install per-link fault probabilities at ``at``.

    ``a``/``b`` of ``None`` targets every link (the default profile).
    Probabilities not given stay zero — an event *replaces* the link's
    profile rather than patching it.
    """

    at: float
    a: Optional[int] = None
    b: Optional[int] = None
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_jitter: float = 0.05
    corrupt: float = 0.0

    kind = "link"

    def __post_init__(self) -> None:
        _check_times(self)
        _require(
            (self.a is None) == (self.b is None),
            "link event must name both endpoints or neither",
        )
        _check_node(self, "a", "b")
        if self.a is not None:
            _require(self.a != self.b, f"link {self.a}-{self.b} is a self-loop")
        _check_prob(self, "drop", "duplicate", "reorder", "corrupt")
        _require(self.reorder_jitter >= 0,
                 f"link reorder_jitter={self.reorder_jitter} is negative")

    def nodes_touched(self) -> Tuple[int, ...]:
        return () if self.a is None else (self.a, self.b)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at,
                "link": None if self.a is None else [self.a, self.b],
                "drop": self.drop, "duplicate": self.duplicate,
                "reorder": self.reorder, "reorder_jitter": self.reorder_jitter,
                "corrupt": self.corrupt}


@dataclass(frozen=True)
class SlowNodeEvent:
    """Slow ``node`` down by ``delay`` seconds per inbound message."""

    at: float
    node: int
    delay: float
    until: Optional[float] = None

    kind = "slow"

    def __post_init__(self) -> None:
        _check_times(self, "until")
        _check_node(self, "node")
        _require(self.delay >= 0, f"slow delay={self.delay} is negative")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "node": self.node,
                "delay": self.delay, "until": self.until}

    def nodes_touched(self) -> Tuple[int, ...]:
        return (self.node,)


@dataclass(frozen=True)
class ClockSkewEvent:
    """Skew ``node``'s service-visible clock by ``offset`` seconds."""

    at: float
    node: int
    offset: float

    kind = "skew"

    def __post_init__(self) -> None:
        _check_times(self)
        _check_node(self, "node")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "node": self.node,
                "offset": self.offset}

    def nodes_touched(self) -> Tuple[int, ...]:
        return (self.node,)


FaultEvent = Union[
    PartitionEvent, FlapEvent, CrashEvent, LinkFaultEvent, SlowNodeEvent,
    ClockSkewEvent,
]


@dataclass
class FaultPlan:
    """An ordered, named schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.at, e.kind))
        for event in self.events:
            if event.at < 0:
                raise ChaosError(f"event scheduled before t=0: {event!r}")

    def validate(
        self,
        n_nodes: Optional[int] = None,
        require_recovery: bool = False,
    ) -> "FaultPlan":
        """Check cross-event and world-level constraints; return self.

        Per-event shape (negative times, probabilities outside [0, 1],
        self-loop links, empty or overlapping partition groups, ends
        before starts) is already enforced at construction.  This adds
        what only the caller knows:

        * with ``n_nodes``, every node id an event touches must be in
          range — the error that otherwise surfaces as an ``IndexError``
          deep inside the controller mid-run;
        * with ``require_recovery``, every crash must name a
          ``recover_at`` (fuzz targets and converged-end-state
          experiments need every victim back up).

        Raises :class:`ChaosError` (a ``ValueError``) with the offending
        event in the message.
        """
        for event in self.events:
            if n_nodes is not None:
                for node in event.nodes_touched():
                    if not 0 <= node < n_nodes:
                        raise ChaosError(
                            f"{event.kind} event targets node {node} outside "
                            f"the {n_nodes}-node world: {event.to_dict()}"
                        )
            if require_recovery and isinstance(event, CrashEvent) \
                    and event.recover_at is None:
                raise ChaosError(
                    f"crash without recovery not allowed here: {event.to_dict()}"
                )
        return self

    @property
    def horizon(self) -> float:
        """Latest timestamp any event in the plan touches."""
        times = [0.0]
        for e in self.events:
            times.append(e.at)
            for attr in ("heal_at", "recover_at", "until"):
                value = getattr(e, attr, None)
                if value is not None:
                    times.append(value)
        return max(times)

    # ------------------------------------------------------------------
    # Dict / JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        events = [_event_from_dict(entry) for entry in data.get("events", [])]
        return cls(events=events, name=data.get("name", ""))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Text grammar
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, name: str = "") -> "FaultPlan":
        """Parse the line-oriented grammar (see module docstring)."""
        events: List[FaultEvent] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                events.append(_parse_line(line))
            except (ValueError, IndexError, KeyError) as exc:
                raise ChaosError(f"line {lineno}: cannot parse {line!r}: {exc}") from exc
        return cls(events=events, name=name)

    def to_text(self) -> str:
        """Render the plan in the line-oriented grammar.

        The inverse of :meth:`parse`: ``FaultPlan.parse(plan.to_text())``
        reconstructs an equal plan (floats are rendered with ``repr``,
        which round-trips exactly).
        """
        return "\n".join(_event_to_line(e) for e in self.events)

    def describe(self) -> str:
        """One line per event, in schedule order."""
        return "\n".join(f"t={e.at:g} {e.to_dict()}" for e in self.events)

    def digest(self) -> str:
        """Stable hex digest of the plan's canonical JSON."""
        import hashlib

        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.events)


def _event_from_dict(entry: Dict[str, Any]) -> FaultEvent:
    kind = entry.get("kind")
    at = float(entry["at"])
    if kind == "partition":
        return PartitionEvent(
            at=at,
            groups=tuple(tuple(int(n) for n in g) for g in entry["groups"]),
            heal_at=_opt_float(entry.get("heal_at")),
        )
    if kind == "flap":
        a, b = entry["link"]
        return FlapEvent(at=at, a=int(a), b=int(b), period=float(entry["period"]),
                         duty=float(entry.get("duty", 0.5)),
                         until=_opt_float(entry.get("until")))
    if kind == "crash":
        return CrashEvent(at=at, node=int(entry["node"]),
                          amnesia=bool(entry.get("amnesia", False)),
                          recover_at=_opt_float(entry.get("recover_at")))
    if kind == "link":
        link = entry.get("link")
        a, b = (None, None) if link is None else (int(link[0]), int(link[1]))
        return LinkFaultEvent(
            at=at, a=a, b=b,
            drop=float(entry.get("drop", 0.0)),
            duplicate=float(entry.get("duplicate", 0.0)),
            reorder=float(entry.get("reorder", 0.0)),
            reorder_jitter=float(entry.get("reorder_jitter", 0.05)),
            corrupt=float(entry.get("corrupt", 0.0)),
        )
    if kind == "slow":
        return SlowNodeEvent(at=at, node=int(entry["node"]),
                             delay=float(entry["delay"]),
                             until=_opt_float(entry.get("until")))
    if kind == "skew":
        return ClockSkewEvent(at=at, node=int(entry["node"]),
                              offset=float(entry["offset"]))
    raise ChaosError(f"unknown fault event kind {kind!r}")


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def _parse_line(line: str) -> FaultEvent:
    tokens = line.split()
    if tokens[0] != "at":
        raise ValueError("event must start with 'at <time>'")
    at = float(tokens[1])
    verb = tokens[2]
    rest = tokens[3:]
    if verb == "partition":
        # groups up to optional trailing "heal <t>"
        heal_at = None
        if len(rest) >= 2 and rest[-2] == "heal":
            heal_at = float(rest[-1])
            rest = rest[:-2]
        groups = []
        for group_text in " ".join(rest).split("|"):
            members = tuple(int(n) for n in group_text.replace(",", " ").split())
            if members:
                groups.append(members)
        if not groups:
            raise ValueError("partition needs at least one group")
        return PartitionEvent(at=at, groups=tuple(groups), heal_at=heal_at)
    if verb == "flap":
        a, b = (int(n) for n in rest[0].split("-"))
        opts = _keyword_floats(rest[1:])
        return FlapEvent(at=at, a=a, b=b, period=opts["period"],
                         duty=opts.get("duty", 0.5), until=opts.get("until"))
    if verb == "crash":
        node = int(rest[0])
        amnesia = "amnesia" in rest[1:]
        opts = _keyword_floats([t for t in rest[1:] if t != "amnesia"])
        return CrashEvent(at=at, node=node, amnesia=amnesia,
                          recover_at=opts.get("recover"))
    if verb == "link":
        target = rest[0]
        a, b = (None, None) if target == "*" else (int(n) for n in target.split("-"))
        opts = _keyword_floats(rest[1:])
        return LinkFaultEvent(
            at=at, a=a, b=b,
            drop=opts.get("drop", 0.0), duplicate=opts.get("dup", 0.0),
            reorder=opts.get("reorder", 0.0),
            reorder_jitter=opts.get("jitter", 0.05),
            corrupt=opts.get("corrupt", 0.0),
        )
    if verb == "slow":
        node = int(rest[0])
        opts = _keyword_floats(rest[1:])
        return SlowNodeEvent(at=at, node=node, delay=opts["delay"],
                             until=opts.get("until"))
    if verb == "skew":
        node = int(rest[0])
        opts = _keyword_floats(rest[1:])
        return ClockSkewEvent(at=at, node=node, offset=opts["offset"])
    raise ValueError(f"unknown verb {verb!r}")


def _keyword_floats(tokens: List[str]) -> Dict[str, float]:
    if len(tokens) % 2:
        raise ValueError(f"dangling keyword in {tokens!r}")
    return {tokens[i]: float(tokens[i + 1]) for i in range(0, len(tokens), 2)}


def _event_to_line(event: FaultEvent) -> str:
    """One grammar line for ``event`` (see :meth:`FaultPlan.to_text`)."""
    head = f"at {event.at!r}"
    if isinstance(event, PartitionEvent):
        groups = " | ".join(",".join(str(n) for n in g) for g in event.groups)
        heal = f" heal {event.heal_at!r}" if event.heal_at is not None else ""
        return f"{head} partition {groups}{heal}"
    if isinstance(event, FlapEvent):
        until = f" until {event.until!r}" if event.until is not None else ""
        return (f"{head} flap {event.a}-{event.b} period {event.period!r} "
                f"duty {event.duty!r}{until}")
    if isinstance(event, CrashEvent):
        amnesia = " amnesia" if event.amnesia else ""
        recover = f" recover {event.recover_at!r}" \
            if event.recover_at is not None else ""
        return f"{head} crash {event.node}{amnesia}{recover}"
    if isinstance(event, LinkFaultEvent):
        target = "*" if event.a is None else f"{event.a}-{event.b}"
        return (f"{head} link {target} drop {event.drop!r} "
                f"dup {event.duplicate!r} reorder {event.reorder!r} "
                f"jitter {event.reorder_jitter!r} corrupt {event.corrupt!r}")
    if isinstance(event, SlowNodeEvent):
        until = f" until {event.until!r}" if event.until is not None else ""
        return f"{head} slow {event.node} delay {event.delay!r}{until}"
    if isinstance(event, ClockSkewEvent):
        return f"{head} skew {event.node} offset {event.offset!r}"
    raise ChaosError(f"unknown fault event {event!r}")


# ----------------------------------------------------------------------
# Randomized plan generation (for chaos sweeps)
# ----------------------------------------------------------------------


def plan_rng(source: Union[random.Random, "RngRegistry", int],
             stream: str = "chaos.plan") -> random.Random:
    """Resolve a randomness source for plan generation.

    Accepts a plain ``random.Random`` (legacy call sites), an
    :class:`~repro.sim.rng.RngRegistry` (draws from the named
    ``stream``), or a bare int seed (derives the named stream from it).
    Generators that go through here are deterministic end to end and
    isolated per stream name — adding a new consumer never perturbs
    existing draws, which is what makes fuzz campaigns byte-replayable.
    """
    if isinstance(source, random.Random):
        return source
    from ..sim.rng import RngRegistry

    if isinstance(source, RngRegistry):
        return source.stream(stream)
    if isinstance(source, int):
        return RngRegistry(source).stream(stream)
    raise TypeError(f"cannot derive an RNG from {source!r}")


def random_fault_plan(
    rng: Union[random.Random, "RngRegistry", int],
    n_nodes: int,
    duration: float,
    *,
    crashes: int = 2,
    flaps: int = 1,
    partitions: int = 1,
    drop: float = 0.05,
    duplicate: float = 0.03,
    reorder: float = 0.1,
    corrupt: float = 0.01,
    amnesia_prob: float = 0.5,
    protect: Tuple[int, ...] = (),
    name: str = "random",
) -> FaultPlan:
    """Draw a randomized but fully deterministic plan from ``rng``.

    ``protect`` lists node ids never crashed (e.g. a protocol's root).
    ``amnesia_prob`` is the chance a crash loses state — set it to 0
    for protocols whose safety assumes stable storage (Paxos acceptors
    must not forget promises).  Every partition and crash
    heals/recovers before ``duration`` so experiments can assert on
    converged end states.

    ``rng`` may be a plain ``random.Random``, an ``RngRegistry`` (the
    named ``chaos.plan`` stream is used), or an int seed — see
    :func:`plan_rng`.
    """
    rng = plan_rng(rng)
    events: List[FaultEvent] = [
        LinkFaultEvent(at=0.0, drop=drop, duplicate=duplicate, reorder=reorder,
                       reorder_jitter=0.2, corrupt=corrupt),
    ]
    candidates = [n for n in range(n_nodes) if n not in protect]
    for _ in range(crashes):
        node = rng.choice(candidates)
        at = rng.uniform(0.1 * duration, 0.5 * duration)
        recover = rng.uniform(at + 0.05 * duration, 0.7 * duration)
        events.append(CrashEvent(at=at, node=node,
                                 amnesia=rng.random() < amnesia_prob,
                                 recover_at=recover))
    for _ in range(flaps):
        a, b = rng.sample(range(n_nodes), 2)
        events.append(FlapEvent(
            at=rng.uniform(0.0, 0.3 * duration), a=a, b=b,
            period=rng.uniform(0.5, 2.0), duty=rng.uniform(0.2, 0.6),
            until=rng.uniform(0.5 * duration, 0.7 * duration),
        ))
    for _ in range(partitions):
        nodes = list(range(n_nodes))
        rng.shuffle(nodes)
        cut = rng.randint(1, n_nodes - 1)
        side_a, side_b = nodes[:cut], nodes[cut:]
        # Keep protected nodes (e.g. the tree root) on side A so a
        # majority-side protocol keeps making progress.
        for p in protect:
            if p in side_b and len(side_b) > 1:
                side_b.remove(p)
                side_a.append(p)
        at = rng.uniform(0.2 * duration, 0.5 * duration)
        events.append(PartitionEvent(
            at=at, groups=(tuple(sorted(side_a)), tuple(sorted(side_b))),
            heal_at=rng.uniform(at + 0.05 * duration, 0.7 * duration),
        ))
    return FaultPlan(events=events, name=name)


__all__ = [
    "PartitionEvent",
    "FlapEvent",
    "CrashEvent",
    "LinkFaultEvent",
    "SlowNodeEvent",
    "ClockSkewEvent",
    "FaultEvent",
    "FaultPlan",
    "plan_rng",
    "random_fault_plan",
]
