"""The coverage-guided fuzz campaign.

A campaign spends a budget of executions hunting live safety
violations in one :class:`~repro.fuzz.executor.FuzzTarget`.  The loop
is classic evolutionary fuzzing over :class:`FaultPlan` genomes:

1. pick a parent from the corpus (weighted by *energy*: its
   near-violation score plus the novelty it contributed), or draw a
   fresh plan from the target's random surface;
2. mutate it (or cross it over with a second parent);
3. execute, extract coverage features and the near-violation score;
4. plans that contributed novel features or positive scores join the
   corpus; live violations are recorded as counterexamples.

Every random draw comes from named streams of one
:class:`~repro.sim.rng.RngRegistry` rooted at the campaign seed, and
per-execution cluster seeds are drawn from their own stream, so one
``(target, seed, budget)`` triple always reproduces the identical
campaign — byte-identical corpus digests, counterexamples, and
history.  ``mode="random"`` disables steps 1–4's guidance (every
execution draws from the random surface, nothing is mutated): the
baseline the benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..chaos import FaultPlan
from ..sim.rng import RngRegistry, derive_seed
from .coverage import CoverageMap
from .executor import ExecutionResult, FuzzTarget
from .mutators import crossover, mutate_plan


@dataclass
class CorpusEntry:
    """One interesting plan retained for further mutation."""

    plan: FaultPlan
    seed: int
    score: float
    novelty: int
    execution: int

    @property
    def energy(self) -> float:
        """Parent-selection weight: score plus novelty, floored at 1
        so every corpus member stays reachable."""
        return 1.0 + self.score + float(self.novelty)


@dataclass
class Counterexample:
    """A plan that broke a safety property live."""

    plan: FaultPlan
    seed: int
    violations: List[str]
    execution: int
    trace_digest: str

    def summary(self) -> str:
        return (
            f"execution #{self.execution} seed={self.seed} "
            f"events={len(self.plan)}: {self.violations[0]}"
        )


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    target: str
    seed: int
    budget: int
    mode: str
    executions: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    corpus: List[CorpusEntry] = field(default_factory=list)
    coverage: Dict[str, int] = field(default_factory=dict)
    first_violation_execution: Optional[int] = None
    duplicate_plans_skipped: int = 0

    @property
    def found_violation(self) -> bool:
        return bool(self.counterexamples)

    def corpus_digests(self) -> List[str]:
        """Plan digests of the corpus, in admission order — the
        campaign's reproducibility fingerprint."""
        return [entry.plan.digest() for entry in self.corpus]

    def summary(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "seed": self.seed,
            "mode": self.mode,
            "executions": self.executions,
            "violations": len(self.counterexamples),
            "first_violation_execution": self.first_violation_execution,
            "corpus_size": len(self.corpus),
            "coverage": dict(self.coverage),
            "duplicate_plans_skipped": self.duplicate_plans_skipped,
        }


class FuzzCampaign:
    """Coverage-guided adversarial scenario search over one target."""

    # A fresh random-surface draw instead of a mutation, this often —
    # exploration never starves even with a rich corpus.
    FRESH_PLAN_RATE = 0.2
    CROSSOVER_RATE = 0.2
    # Distinct cluster seeds cycled through per execution: violations
    # are (plan, seed) pairs, so schedule search needs seed diversity.
    SEED_SPAN = 8
    # Stop admitting corpus entries past this size; weakest evicted.
    MAX_CORPUS = 64

    def __init__(
        self,
        target: FuzzTarget,
        seed: int = 0,
        budget: int = 500,
        mode: str = "guided",
        steering: bool = False,
        probes: bool = True,
        stop_after: Optional[int] = None,
        stream: Optional[Any] = None,
        progress_every: int = 25,
    ) -> None:
        if mode not in ("guided", "random"):
            raise ValueError(f"unknown campaign mode {mode!r}")
        self.target = target
        self.seed = seed
        self.budget = budget
        self.mode = mode
        self.steering = steering
        # Random mode never probes: the baseline is plain random
        # testing, and prediction passes would only slow it down.
        self.probes = probes and mode == "guided"
        self.stop_after = stop_after
        # Live progress: a RunStream (or path) receiving one
        # ``fuzz.progress`` event every ``progress_every`` executions —
        # a campaign has no simulated clock, so the execution count is
        # the stream's ``t`` axis.  Observation only: the campaign's
        # RNG streams and corpus decisions never see the stream, so
        # results stay byte-reproducible from (target, seed, budget).
        self.stream = stream
        self.progress_every = max(1, progress_every)
        self.rng = RngRegistry(derive_seed(seed, f"fuzz.{target.name}"))
        self.coverage = CoverageMap()

    # ------------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Spend the execution budget; return the campaign record."""
        from ..obs.stream import as_stream

        result = CampaignResult(target=self.target.name, seed=self.seed,
                                budget=self.budget, mode=self.mode)
        mutate_rng = self.rng.stream("fuzz.mutate")
        schedule_rng = self.rng.stream("fuzz.schedule")
        seed_rng = self.rng.stream("fuzz.exec-seed")
        surface_rng = self.rng.stream("fuzz.surface")
        run_stream = as_stream(
            self.stream, kind="fuzz",
            config={"target": self.target.name, "seed": self.seed,
                    "budget": self.budget, "mode": self.mode},
        )
        owns_stream = run_stream is not None and run_stream is not self.stream
        best_score = 0.0

        while result.executions < self.budget:
            plan = self._next_plan(result, mutate_rng, schedule_rng, surface_rng)
            if plan is None:
                result.duplicate_plans_skipped += 1
                continue
            exec_seed = seed_rng.randrange(self.SEED_SPAN)
            execution = self.target.execute(
                plan, exec_seed, probes=self.probes, steering=self.steering,
            )
            result.executions += 1
            if execution.score > best_score:
                best_score = execution.score
            self._record(result, plan, exec_seed, execution)
            if run_stream is not None \
                    and result.executions % self.progress_every == 0:
                self._emit_progress(run_stream, result, best_score)
            if self.stop_after is not None \
                    and len(result.counterexamples) >= self.stop_after:
                break
        result.coverage = self.coverage.snapshot()
        if run_stream is not None:
            self._emit_progress(run_stream, result, best_score)
            if owns_stream:
                run_stream.write_summary(
                    t=float(result.executions), **result.summary(),
                )
        return result

    def _emit_progress(self, run_stream, result: CampaignResult,
                       best_score: float) -> None:
        """One ``fuzz.progress`` event: where the campaign stands."""
        run_stream.write_event(
            "fuzz.progress", t=float(result.executions),
            executions=result.executions,
            corpus_size=len(result.corpus),
            coverage_bits=self.coverage.snapshot().get("features", 0),
            violations=len(result.counterexamples),
            best_score=round(best_score, 6),
            duplicates_skipped=result.duplicate_plans_skipped,
        )

    # ------------------------------------------------------------------

    def _next_plan(self, result, mutate_rng, schedule_rng,
                   surface_rng) -> Optional[FaultPlan]:
        """Draw the next candidate; None if it duplicates an old plan."""
        target = self.target
        corpus = result.corpus
        if self.mode == "random" or not corpus \
                or schedule_rng.random() < self.FRESH_PLAN_RATE:
            plan = target.random_plan(surface_rng)
        else:
            parent = self._pick_parent(corpus, schedule_rng)
            if len(corpus) > 1 and schedule_rng.random() < self.CROSSOVER_RATE:
                other = self._pick_parent(corpus, schedule_rng)
                plan = crossover(parent.plan, other.plan, mutate_rng)
                plan = mutate_plan(plan, mutate_rng, target.n_nodes,
                                   target.horizon, rounds=1)
            else:
                plan = mutate_plan(parent.plan, mutate_rng, target.n_nodes,
                                   target.horizon)
        # In guided mode an exact plan repeat teaches nothing new for
        # the same seed budget — skip it (costs one scheduling draw,
        # not one execution).  Random mode keeps duplicates: the
        # baseline must pay for its own redundancy.
        if self.mode == "guided" and self.coverage.seen_plan(plan.digest()):
            return None
        return plan

    @staticmethod
    def _pick_parent(corpus: List[CorpusEntry], rng) -> CorpusEntry:
        """Energy-weighted parent selection."""
        total = sum(entry.energy for entry in corpus)
        pick = rng.uniform(0.0, total)
        for entry in corpus:
            pick -= entry.energy
            if pick <= 0.0:
                return entry
        return corpus[-1]

    def _record(self, result: CampaignResult, plan: FaultPlan, seed: int,
                execution: ExecutionResult) -> None:
        novelty = self.coverage.observe(execution.features)
        duplicate_trace = self.coverage.seen_trace(execution.trace_digest)
        if execution.violated:
            result.counterexamples.append(Counterexample(
                plan=plan, seed=seed, violations=list(execution.violations),
                execution=result.executions, trace_digest=execution.trace_digest,
            ))
            if result.first_violation_execution is None:
                result.first_violation_execution = result.executions
        if self.mode != "guided":
            return
        interesting = (novelty > 0 or execution.score > 0.0
                       or execution.violated) and not duplicate_trace
        if interesting:
            result.corpus.append(CorpusEntry(
                plan=plan, seed=seed, score=execution.score,
                novelty=novelty, execution=result.executions,
            ))
            if len(result.corpus) > self.MAX_CORPUS:
                weakest = min(range(len(result.corpus)),
                              key=lambda i: result.corpus[i].energy)
                result.corpus.pop(weakest)


__all__ = [
    "CampaignResult",
    "CorpusEntry",
    "Counterexample",
    "FuzzCampaign",
]
