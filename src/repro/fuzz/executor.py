"""Fuzz targets: one deterministic execution of a plan against an app.

A :class:`FuzzTarget` knows how to run one :class:`FaultPlan` against
one protocol and report everything the campaign's coverage signal
needs: which safety properties broke live, what the trace looked like
(digest + behavior features), which faults actually landed, and what
consequence prediction foresaw from probe snapshots mid-run.

Two targets ship:

* ``paxos`` — the 5-replica Mencius WAN workload.  Live safety is
  single-decree agreement, checked at every probe and at the end.
  The prediction probes also carry the ``near:accepted-coherent``
  canary — "no accepted value conflicts with a chosen value elsewhere,
  and no two replicas accept different values at one (instance,
  ballot)" — a *precursor* property whose predicted violations sit one
  or two actions from the current world, giving the search a gradient
  long before agreement itself (which needs a full gap-fill round
  trip) can break.
* ``randtree`` — an 8-node RandTree join under chaos.  Live safety is
  the structural invariant set (degree bound, no self-edges, no
  consistent-edge cycle), probed twice a simulated second; prediction
  probes use the protocol's own CrystalBall property set.

Executions are pure functions of ``(plan, seed)``: same inputs, same
trace digest, same verdict — the property the shrinker and the corpus
replay test rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from ..apps.paxos import PaxosConfig, make_paxos_factory
from ..apps.randtree import RandTreeConfig, make_baseline_factory, randtree_properties
from ..chaos import ChaosController, FaultPlan
from ..chaos.plan import CrashEvent, LinkFaultEvent, PartitionEvent, plan_rng
from ..eval.chaos_experiment import check_randtree_invariants, trace_digest
from ..eval.paxos_experiment import agreement_holds, at_most_once_holds, wan_topology
from ..mc import (
    ConsequencePredictor,
    Explorer,
    SafetyProperty,
    WorldState,
    world_from_services,
)
from ..statemachine import Cluster
from .coverage import (
    chaos_features,
    near_violation_score,
    prediction_features,
    trace_features,
)
from .mutators import MAX_PROB


@dataclass
class ExecutionResult:
    """Everything one execution tells the campaign."""

    target: str
    seed: int
    plan_digest: str
    trace_digest: str = ""
    violations: List[str] = field(default_factory=list)
    near_violations: Dict[str, int] = field(default_factory=dict)
    min_violation_depth: Optional[int] = None
    features: FrozenSet = frozenset()
    score: float = 0.0
    chaos_stats: Dict[str, int] = field(default_factory=dict)
    # Only populated on keep_cluster executions (forensics re-runs).
    cluster: Optional[Cluster] = None

    @property
    def violated(self) -> bool:
        return bool(self.violations)


class FuzzTarget:
    """One app under adversarial scenario search."""

    name = "target"
    n_nodes = 0
    horizon = 0.0
    # Consequence-prediction probe schedule and exploration bounds.
    probe_times: tuple = ()
    chain_depth = 3
    predict_budget = 160

    def random_plan(self, rng: random.Random) -> FaultPlan:
        """Draw a plan from this target's random surface (the baseline
        the guided campaign is benchmarked against)."""
        raise NotImplementedError

    def execute(self, plan: FaultPlan, seed: int, *, probes: bool = True,
                causal: bool = False, keep_cluster: bool = False,
                steering: bool = False) -> ExecutionResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _finish(
        self,
        result: ExecutionResult,
        cluster: Cluster,
        controller: ChaosController,
        keep_cluster: bool,
    ) -> ExecutionResult:
        result.trace_digest = trace_digest(cluster.sim.trace)
        result.chaos_stats = controller.stats()
        features = trace_features(cluster.sim.trace)
        features |= chaos_features(result.chaos_stats)
        features |= {("viol", v.split(":", 1)[0]) for v in result.violations}
        features |= prediction_features(result.near_violations,
                                        result.min_violation_depth)
        result.features = frozenset(features)
        result.score = near_violation_score(
            result.near_violations, result.min_violation_depth, self.chain_depth,
        )
        if keep_cluster:
            result.cluster = cluster
        return result

    def _schedule_probes(
        self,
        cluster: Cluster,
        predictor: Optional[ConsequencePredictor],
        result: ExecutionResult,
        live_check: Callable[[WorldState], List[str]],
    ) -> None:
        """Probe at the target's probe times: live property check plus
        (when a predictor is given) a consequence-prediction pass whose
        near-violation counts feed the coverage score."""

        def probe() -> None:
            down = [n.node_id for n in cluster.nodes if not n.is_up]
            world = world_from_services(
                cluster.services, cluster.nodes, down=down, time=cluster.sim.now,
            )
            for violation in live_check(world):
                message = f"t={cluster.sim.now:g}: {violation}"
                if message not in result.violations:
                    result.violations.append(message)
            if predictor is not None:
                report = predictor.predict(world)
                for prop, count in report.near_violations().items():
                    result.near_violations[prop] = (
                        result.near_violations.get(prop, 0) + count
                    )
                depth = report.min_violation_depth()
                if depth is not None:
                    current = result.min_violation_depth
                    result.min_violation_depth = (
                        depth if current is None else min(current, depth)
                    )

        for time in self.probe_times:
            cluster.sim.schedule_at(time, probe, tag="fuzz.probe")


# ----------------------------------------------------------------------
# Paxos target
# ----------------------------------------------------------------------


def paxos_agreement(world: WorldState) -> bool:
    """Single-decree agreement over a world's ``chosen`` maps."""
    decided: Dict[Any, tuple] = {}
    for node_id in world.node_ids:
        for instance, value in world.state_of(node_id).get("chosen", {}).items():
            if instance in decided and decided[instance] != tuple(value):
                return False
            decided[instance] = tuple(value)
    return True


def accepted_coherent(world: WorldState) -> bool:
    """The near-violation canary for Paxos.

    Two precursor conditions of an agreement break: an acceptor holds
    an accepted value conflicting with a value already chosen
    elsewhere, or two acceptors hold different values for one
    (instance, ballot).  Either means a quorum could be assembled for
    the wrong value — detectable one delivery ahead of the break
    itself.
    """
    chosen: Dict[int, tuple] = {}
    for node_id in world.node_ids:
        for instance, value in world.state_of(node_id).get("chosen", {}).items():
            chosen[int(instance)] = tuple(value)
    seen: Dict[tuple, tuple] = {}
    for node_id in world.node_ids:
        for instance, acc in world.state_of(node_id).get("accepted", {}).items():
            instance = int(instance)
            ballot, value = acc[0], tuple(acc[1])
            if instance in chosen and value != chosen[instance]:
                return False
            if (instance, ballot) in seen and seen[(instance, ballot)] != value:
                return False
            seen[(instance, ballot)] = value
    return True


class PaxosFuzzTarget(FuzzTarget):
    """Mencius over the 5-site WAN, hunting agreement violations.

    The interesting adversary couples high message loss (so ``Learn``
    broadcasts miss a majority) with an amnesia crash (so a recovered
    replica gap-fills a slot it already decided) — exactly the surface
    :meth:`random_plan` samples.
    """

    name = "paxos"
    n_nodes = 5
    horizon = 16.0
    probe_times = (3.0, 5.0, 7.0)
    chain_depth = 3
    predict_budget = 160

    def __init__(self) -> None:
        self.config = PaxosConfig(n=5, request_interval=0.5, requests_per_node=3)
        self.factory = make_paxos_factory("mencius", self.config)
        self.properties = [
            SafetyProperty("paxos-agreement", paxos_agreement),
            SafetyProperty("near:accepted-coherent", accepted_coherent),
        ]

    def random_plan(self, rng: random.Random) -> FaultPlan:
        rng = plan_rng(rng, stream="fuzz.surface")
        events: List[Any] = [LinkFaultEvent(
            at=0.0, drop=rng.uniform(0.05, MAX_PROB),
            reorder=rng.uniform(0.0, 0.3), reorder_jitter=0.2,
        )]
        for _ in range(rng.randint(1, 2)):
            at = rng.uniform(1.0, 8.0)
            events.append(CrashEvent(
                at=at, node=rng.randrange(self.n_nodes),
                amnesia=rng.random() < 0.7,
                recover_at=at + rng.uniform(0.1, 2.5),
            ))
        return FaultPlan(events=events)

    def execute(self, plan: FaultPlan, seed: int, *, probes: bool = True,
                causal: bool = False, keep_cluster: bool = False,
                steering: bool = False) -> ExecutionResult:
        cluster = Cluster(self.n_nodes, self.factory,
                          topology=wan_topology(self.n_nodes), seed=seed,
                          causal=causal)
        controller = ChaosController(cluster, plan)
        controller.arm()
        if steering:
            from ..runtime import install_crystalball

            install_crystalball(
                cluster, self.factory, set_resolver=False,
                properties=self.properties, checkpoint_period=1.0,
                prediction_period=1.0, chain_depth=self.chain_depth,
                budget=self.predict_budget,
            )
        cluster.start_all()
        result = ExecutionResult(target=self.name, seed=seed,
                                 plan_digest=plan.digest())
        predictor = None
        if probes:
            explorer = Explorer(self.factory, properties=self.properties)
            predictor = ConsequencePredictor(
                explorer, chain_depth=self.chain_depth,
                budget=self.predict_budget,
            )

        self._schedule_probes(cluster, predictor, result, self._live_violations)
        cluster.run(until=self.horizon)
        for violation in self._final_violations(cluster):
            result.violations.append(f"t=end: {violation}")
        return self._finish(result, cluster, controller, keep_cluster)

    def _live_violations(self, world: WorldState) -> List[str]:
        if not paxos_agreement(world):
            return ["paxos-agreement: two replicas chose different values"]
        return []

    def _final_violations(self, cluster: Cluster) -> List[str]:
        if not agreement_holds(cluster):
            return ["paxos-agreement: two replicas chose different values"]
        return []


def paxos_at_most_once(world: WorldState) -> bool:
    """At-most-once execution over a world's replicated logs: no
    replica's in-order execution sequence applies a command twice."""
    for node_id in world.node_ids:
        executed = [tuple(c) for c in world.state_of(node_id).get("executed", [])]
        if len(executed) != len(set(executed)):
            return False
    return True


class BatchedPaxosFuzzTarget(PaxosFuzzTarget):
    """Batched Multi-Paxos over the same WAN, same adversary surface.

    The batched replica adds attack surface the single-decree target
    lacks: whole batches lose instances at a time (re-sequencing must
    not duplicate or drop commands), ranged prepares can race point
    escalations, and learner catch-up replays decided values into
    recovering replicas.  The choice sets are kept small
    (batch sizes 1/4, pipeline depth 2) so the prediction probes'
    choose-branching stays within the exploration budget.
    """

    name = "paxos-batched"

    def __init__(self) -> None:
        self.config = PaxosConfig(
            n=5, request_interval=0.4, requests_per_node=4,
            batch_size_choices=(1, 4), pipeline_depth=2,
            retry_pacing_choices=(1.0, 2.0),
        )
        self.factory = make_paxos_factory("batched", self.config)
        self.properties = [
            SafetyProperty("paxos-agreement", paxos_agreement),
            SafetyProperty("paxos-at-most-once", paxos_at_most_once),
            SafetyProperty("near:accepted-coherent", accepted_coherent),
        ]

    def _live_violations(self, world: WorldState) -> List[str]:
        violations = super()._live_violations(world)
        if not paxos_at_most_once(world):
            violations.append(
                "paxos-at-most-once: a replica applied a command twice"
            )
        return violations

    def _final_violations(self, cluster: Cluster) -> List[str]:
        violations = super()._final_violations(cluster)
        if not at_most_once_holds(cluster):
            violations.append(
                "paxos-at-most-once: a replica applied a command twice"
            )
        return violations


# ----------------------------------------------------------------------
# RandTree target
# ----------------------------------------------------------------------


class RandTreeFuzzTarget(FuzzTarget):
    """An 8-node RandTree join, hunting structural-invariant breaks.

    The known surface: amnesia crashes make a node forget its children
    while they still point at it; combined with a partition during the
    join wave, stale beliefs can close a consistent-edge cycle.
    """

    name = "randtree"
    n_nodes = 8
    horizon = 10.0
    probe_times = (3.0, 5.0, 7.0)
    chain_depth = 2
    predict_budget = 80
    join_spacing = 0.2
    invariant_period = 0.5

    def __init__(self) -> None:
        self.config = RandTreeConfig()
        self.factory = make_baseline_factory(self.config)
        self.properties = randtree_properties(self.config)

    def random_plan(self, rng: random.Random) -> FaultPlan:
        rng = plan_rng(rng, stream="fuzz.surface")
        events: List[Any] = [LinkFaultEvent(
            at=0.0, drop=rng.uniform(0.0, 0.25),
            reorder=rng.uniform(0.0, 0.2), reorder_jitter=0.2,
        )]
        for _ in range(rng.randint(1, 3)):
            at = rng.uniform(0.5, 6.0)
            events.append(CrashEvent(
                at=at, node=rng.randrange(1, self.n_nodes),
                amnesia=rng.random() < 0.8,
                recover_at=at + rng.uniform(0.2, 2.0),
            ))
        if rng.random() < 0.5:
            nodes = list(range(self.n_nodes))
            rng.shuffle(nodes)
            cut = rng.randint(1, self.n_nodes - 1)
            at = rng.uniform(0.5, 5.0)
            events.append(PartitionEvent(
                at=at,
                groups=(tuple(sorted(nodes[:cut])), tuple(sorted(nodes[cut:]))),
                heal_at=at + rng.uniform(0.5, 3.0),
            ))
        return FaultPlan(events=events)

    def execute(self, plan: FaultPlan, seed: int, *, probes: bool = True,
                causal: bool = False, keep_cluster: bool = False,
                steering: bool = False) -> ExecutionResult:
        from ..net import transit_stub

        topology = transit_stub(self.n_nodes, random.Random(seed))
        cluster = Cluster(self.n_nodes, self.factory, topology=topology,
                          seed=seed, causal=causal)
        controller = ChaosController(cluster, plan, checkpoint_period=1.0)
        controller.arm()
        if steering:
            from ..runtime import install_crystalball

            install_crystalball(
                cluster, self.factory, set_resolver=False,
                properties=self.properties, checkpoint_period=1.0,
                prediction_period=1.0, chain_depth=self.chain_depth,
                budget=self.predict_budget,
            )
        result = ExecutionResult(target=self.name, seed=seed,
                                 plan_digest=plan.digest())
        predictor = None
        if probes:
            explorer = Explorer(self.factory, properties=self.properties)
            predictor = ConsequencePredictor(
                explorer, chain_depth=self.chain_depth,
                budget=self.predict_budget,
            )

        def live_check(world: WorldState) -> List[str]:
            states = {nid: world.state_of(nid) for nid in world.node_ids
                      if nid not in world.down}
            return check_randtree_invariants(states, self.config)

        self._schedule_probes(cluster, predictor, result, live_check)

        # The cheap high-frequency invariant sweep (live checks only).
        def invariant_probe() -> None:
            states = {n.node_id: n.service.checkpoint()
                      for n in cluster.nodes if n.is_up}
            for violation in check_randtree_invariants(states, self.config):
                message = f"t={cluster.sim.now:g}: {violation}"
                if message not in result.violations:
                    result.violations.append(message)
            if cluster.sim.now + self.invariant_period <= self.horizon:
                cluster.sim.schedule(self.invariant_period, invariant_probe,
                                     tag="fuzz.invariant")

        cluster.node(self.config.root).start()
        for index, node_id in enumerate(
                nid for nid in range(self.n_nodes) if nid != self.config.root):
            cluster.sim.schedule_at((index + 1) * self.join_spacing,
                                    cluster.node(node_id).start,
                                    tag=f"fuzz.start:{node_id}")
        cluster.sim.schedule(self.invariant_period, invariant_probe,
                             tag="fuzz.invariant")
        cluster.run(until=self.horizon)
        states = {n.node_id: n.service.checkpoint()
                  for n in cluster.nodes if n.is_up}
        for violation in check_randtree_invariants(states, self.config):
            result.violations.append(f"t=end: {violation}")
        return self._finish(result, cluster, controller, keep_cluster)


TARGETS: Dict[str, Callable[[], FuzzTarget]] = {
    "paxos": PaxosFuzzTarget,
    "paxos-batched": BatchedPaxosFuzzTarget,
    "randtree": RandTreeFuzzTarget,
}


def make_target(name: str) -> FuzzTarget:
    """Instantiate a registered fuzz target by name."""
    try:
        return TARGETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown fuzz target {name!r}; known: {sorted(TARGETS)}"
        ) from None


__all__ = [
    "BatchedPaxosFuzzTarget",
    "ExecutionResult",
    "FuzzTarget",
    "PaxosFuzzTarget",
    "RandTreeFuzzTarget",
    "TARGETS",
    "accepted_coherent",
    "make_target",
    "paxos_agreement",
    "paxos_at_most_once",
]
