"""Coverage signals for adversarial scenario search.

A fuzz campaign needs a notion of *interesting* that is coarser than
"the trace digest changed" (every mutation changes the digest) and
finer than "a property broke" (the event we are hunting).  Two signals
combine here:

* **behavior features** — a small set of hashable facts extracted from
  one execution: which trace categories fired and at what order of
  magnitude, which chaos faults actually landed, which properties were
  violated live, and what the prediction pass foresaw.  An execution
  that contributes features never seen before in the campaign is novel
  and earns its plan a corpus slot.
* **near-violation score** — mined from the probes'
  :class:`~repro.mc.consequence.PredictionReport`: how many violations
  consequence prediction found downstream of the run's worlds and how
  few actions away the closest one was.  This is the gradient that
  lets the search climb toward trouble instead of random-walking: a
  plan whose worlds are one delivery away from a broken property is
  worth mutating even though every live check still passed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

Feature = Tuple


def magnitude(count: int) -> int:
    """Bucket a non-negative count by order of magnitude (bit length).

    0 -> 0, 1 -> 1, 2-3 -> 2, 4-7 -> 3, ...  Buckets keep the feature
    space finite: an execution dropping 96 messages instead of 80 is
    not novel, one dropping 4 instead of 0 is.
    """
    return int(count).bit_length()


def trace_features(trace) -> Set[Feature]:
    """Behavior features of one trace log: category presence + volume."""
    counts: Dict[str, int] = {}
    for record in trace:
        counts[record.category] = counts.get(record.category, 0) + 1
    features: Set[Feature] = set()
    for category, count in counts.items():
        features.add(("cat", category, magnitude(count)))
    return features


def chaos_features(stats: Dict[str, int]) -> Set[Feature]:
    """Which faults actually landed, bucketed by volume."""
    return {("chaos", key, magnitude(count))
            for key, count in stats.items() if count}


def violation_features(violations: Iterable) -> Set[Feature]:
    """One feature per violated property (live violations)."""
    return {("viol", v.prop) for v in violations}


def prediction_features(
    near_violations: Dict[str, int],
    min_depth: Optional[int],
) -> Set[Feature]:
    """Features mined from the probes' prediction reports."""
    features: Set[Feature] = set()
    for prop, count in near_violations.items():
        features.add(("pred", prop, magnitude(count)))
    if min_depth is not None:
        features.add(("pred-depth", min_depth))
    return features


def near_violation_score(
    near_violations: Dict[str, int],
    min_depth: Optional[int],
    chain_depth: int,
) -> float:
    """Scalar climb signal from one execution's prediction probes.

    Grows with how *many* violations prediction foresaw (log-bucketed,
    so volume saturates) and with how *close* the nearest one was
    (``chain_depth - min_depth``: distance 1 at depth 4 scores higher
    than distance 4).
    """
    if not near_violations:
        return 0.0
    volume = magnitude(sum(near_violations.values()))
    proximity = 0 if min_depth is None else max(0, chain_depth - min_depth + 1)
    # Every distinct property predicted unsafe adds a point: breaking
    # two properties' neighborhoods beats twice as many violations of
    # one.
    return float(volume + 2 * proximity + len(near_violations))


class CoverageMap:
    """The campaign-global record of everything seen so far."""

    def __init__(self) -> None:
        self._features: Set[Feature] = set()
        self._trace_digests: Set[str] = set()
        self._plan_digests: Set[str] = set()

    def __len__(self) -> int:
        return len(self._features)

    def observe(self, features: FrozenSet[Feature]) -> int:
        """Merge an execution's features; return how many were novel."""
        novel = len(features - self._features)
        self._features |= features
        return novel

    def seen_trace(self, digest: str) -> bool:
        """Record a trace digest; True if an earlier execution already
        produced the byte-identical trace (a duplicate behavior)."""
        if digest in self._trace_digests:
            return True
        self._trace_digests.add(digest)
        return False

    def seen_plan(self, digest: str) -> bool:
        """Record a plan digest; True if this exact plan already ran."""
        if digest in self._plan_digests:
            return True
        self._plan_digests.add(digest)
        return False

    def snapshot(self) -> Dict[str, int]:
        return {
            "features": len(self._features),
            "unique_traces": len(self._trace_digests),
            "unique_plans": len(self._plan_digests),
        }


__all__ = [
    "CoverageMap",
    "Feature",
    "chaos_features",
    "magnitude",
    "near_violation_score",
    "prediction_features",
    "trace_features",
    "violation_features",
]
