"""Mutators over :class:`FaultPlan` schedules.

Each mutator takes a plan and returns a *new* plan (events are frozen
dataclasses) with one structured change: an event added or removed, a
time jittered, a target renamed, a partition re-cut, a crash's recovery
re-paired, fault intensities rescaled, or two parents crossed over.
Every draw comes from the ``random.Random`` the caller passes — the
campaign hands in a named stream, so a fuzzing run is a pure function
of its seed.

All outputs respect the plan DSL's validation rules by construction:
times are clamped to ``[0, horizon]``, ends never precede starts,
node ids stay inside the world, probabilities stay in range.  A
mutator that finds nothing applicable (e.g. "remove an event" on an
empty plan) falls back to adding one, so mutation never dead-ends.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Tuple

from ..chaos.plan import (
    ClockSkewEvent,
    CrashEvent,
    FaultEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    SlowNodeEvent,
)

# Plans never grow past this: unbounded schedules slow executions
# without finding anything a small schedule cannot.
MAX_EVENTS = 8
# Per-link probabilities are capped below saturation — a 100% drop
# rate partitions the world trivially and teaches the search nothing.
MAX_PROB = 0.5


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def _span(rng: random.Random, at: float, horizon: float) -> float:
    """An end time after ``at`` but inside the horizon."""
    return _clamp(at + rng.uniform(0.2, 0.4 * horizon), at, horizon)


def random_event(rng: random.Random, n_nodes: int, horizon: float) -> FaultEvent:
    """Draw one random event of a random kind."""
    kind = rng.choice(("partition", "flap", "crash", "link", "slow", "skew"))
    at = rng.uniform(0.0, 0.7 * horizon)
    if kind == "partition":
        return _random_partition(rng, n_nodes, horizon)
    if kind == "flap":
        a, b = rng.sample(range(n_nodes), 2)
        return FlapEvent(at=at, a=a, b=b, period=rng.uniform(0.5, 2.0),
                         duty=rng.uniform(0.2, 0.7), until=_span(rng, at, horizon))
    if kind == "crash":
        return CrashEvent(
            at=at, node=rng.randrange(n_nodes),
            amnesia=rng.random() < 0.6,
            recover_at=_clamp(at + rng.uniform(0.1, 0.25 * horizon), at, horizon),
        )
    if kind == "link":
        return LinkFaultEvent(
            at=rng.uniform(0.0, 0.3 * horizon),
            drop=rng.uniform(0.0, MAX_PROB),
            duplicate=rng.uniform(0.0, 0.1),
            reorder=rng.uniform(0.0, 0.3),
            reorder_jitter=rng.uniform(0.05, 0.3),
        )
    if kind == "slow":
        return SlowNodeEvent(at=at, node=rng.randrange(n_nodes),
                             delay=rng.uniform(0.02, 0.3),
                             until=_span(rng, at, horizon))
    return ClockSkewEvent(at=at, node=rng.randrange(n_nodes),
                          offset=rng.uniform(-1.0, 1.0))


def _random_partition(rng: random.Random, n_nodes: int,
                      horizon: float) -> PartitionEvent:
    nodes = list(range(n_nodes))
    rng.shuffle(nodes)
    cut = rng.randint(1, n_nodes - 1)
    at = rng.uniform(0.0, 0.6 * horizon)
    return PartitionEvent(
        at=at,
        groups=(tuple(sorted(nodes[:cut])), tuple(sorted(nodes[cut:]))),
        heal_at=_span(rng, at, horizon),
    )


# ----------------------------------------------------------------------
# The mutator suite
# ----------------------------------------------------------------------


def add_event(plan: FaultPlan, rng: random.Random, n_nodes: int,
              horizon: float) -> FaultPlan:
    """Append one random event (dropping a random one first at cap)."""
    events = list(plan.events)
    if len(events) >= MAX_EVENTS:
        events.pop(rng.randrange(len(events)))
    events.append(random_event(rng, n_nodes, horizon))
    return FaultPlan(events=events)


def remove_event(plan: FaultPlan, rng: random.Random, n_nodes: int,
                 horizon: float) -> FaultPlan:
    """Remove one event."""
    if not plan.events:
        return add_event(plan, rng, n_nodes, horizon)
    events = list(plan.events)
    events.pop(rng.randrange(len(events)))
    return FaultPlan(events=events)


def retime_event(plan: FaultPlan, rng: random.Random, n_nodes: int,
                 horizon: float) -> FaultPlan:
    """Jitter one event's start (and dependent end) times."""
    if not plan.events:
        return add_event(plan, rng, n_nodes, horizon)
    events = list(plan.events)
    index = rng.randrange(len(events))
    event = events[index]
    shift = rng.gauss(0.0, 0.1 * horizon)
    at = _clamp(event.at + shift, 0.0, horizon)
    changes = {"at": at}
    for attr in ("heal_at", "recover_at", "until"):
        end = getattr(event, attr, None)
        if end is not None:
            changes[attr] = _clamp(end + shift + rng.gauss(0.0, 0.05 * horizon),
                                   at, horizon)
    events[index] = replace(event, **changes)
    return FaultPlan(events=events)


def retarget_event(plan: FaultPlan, rng: random.Random, n_nodes: int,
                   horizon: float) -> FaultPlan:
    """Point one node-targeting event at a different node or link."""
    candidates = [
        (i, e) for i, e in enumerate(plan.events)
        if isinstance(e, (CrashEvent, SlowNodeEvent, ClockSkewEvent, FlapEvent))
        or (isinstance(e, LinkFaultEvent) and e.a is not None)
    ]
    if not candidates:
        return add_event(plan, rng, n_nodes, horizon)
    index, event = candidates[rng.randrange(len(candidates))]
    events = list(plan.events)
    if isinstance(event, (CrashEvent, SlowNodeEvent, ClockSkewEvent)):
        events[index] = replace(event, node=rng.randrange(n_nodes))
    else:
        a, b = rng.sample(range(n_nodes), 2)
        events[index] = replace(event, a=a, b=b)
    return FaultPlan(events=events)


def split_partition(plan: FaultPlan, rng: random.Random, n_nodes: int,
                    horizon: float) -> FaultPlan:
    """Re-cut an existing partition's groups (or introduce one)."""
    indices = [i for i, e in enumerate(plan.events)
               if isinstance(e, PartitionEvent)]
    if not indices:
        events = list(plan.events)[:MAX_EVENTS - 1]
        events.append(_random_partition(rng, n_nodes, horizon))
        return FaultPlan(events=events)
    index = indices[rng.randrange(len(indices))]
    event = plan.events[index]
    members = [n for g in event.groups for n in g]
    rng.shuffle(members)
    cut = rng.randint(1, len(members) - 1) if len(members) > 1 else 1
    events = list(plan.events)
    events[index] = replace(event, groups=(
        tuple(sorted(members[:cut])), tuple(sorted(members[cut:])),
    ))
    return FaultPlan(events=events)


def repair_crash(plan: FaultPlan, rng: random.Random, n_nodes: int,
                 horizon: float) -> FaultPlan:
    """Re-pair one crash with its recovery: move it, or flip amnesia."""
    indices = [i for i, e in enumerate(plan.events) if isinstance(e, CrashEvent)]
    if not indices:
        return add_event(plan, rng, n_nodes, horizon)
    index = indices[rng.randrange(len(indices))]
    event = plan.events[index]
    events = list(plan.events)
    if rng.random() < 0.4:
        events[index] = replace(event, amnesia=not event.amnesia)
    else:
        recover = _clamp(event.at + rng.uniform(0.05, 0.3) * horizon,
                         event.at, horizon)
        events[index] = replace(event, recover_at=recover)
    return FaultPlan(events=events)


def scale_intensity(plan: FaultPlan, rng: random.Random, n_nodes: int,
                    horizon: float) -> FaultPlan:
    """Rescale one link-fault profile's probabilities."""
    indices = [i for i, e in enumerate(plan.events)
               if isinstance(e, LinkFaultEvent)]
    if not indices:
        events = list(plan.events)[:MAX_EVENTS - 1]
        events.append(LinkFaultEvent(
            at=0.0, drop=rng.uniform(0.05, MAX_PROB),
            reorder=rng.uniform(0.0, 0.3), reorder_jitter=0.2,
        ))
        return FaultPlan(events=events)
    index = indices[rng.randrange(len(indices))]
    event = plan.events[index]
    factor = rng.uniform(0.5, 1.6)
    events = list(plan.events)
    events[index] = replace(
        event,
        drop=_clamp(event.drop * factor, 0.0, MAX_PROB),
        duplicate=_clamp(event.duplicate * factor, 0.0, MAX_PROB),
        reorder=_clamp(event.reorder * factor, 0.0, MAX_PROB),
        corrupt=_clamp(event.corrupt * factor, 0.0, MAX_PROB),
    )
    return FaultPlan(events=events)


MUTATORS: Tuple = (
    add_event,
    remove_event,
    retime_event,
    retarget_event,
    split_partition,
    repair_crash,
    scale_intensity,
)


def crossover(a: FaultPlan, b: FaultPlan, rng: random.Random) -> FaultPlan:
    """Cross two parents: a subset of each one's events, interleaved."""
    events: List[FaultEvent] = []
    for parent in (a, b):
        for event in parent.events:
            if rng.random() < 0.5:
                events.append(event)
    if not events and (a.events or b.events):
        donor = a if a.events else b
        events.append(donor.events[rng.randrange(len(donor.events))])
    return FaultPlan(events=events[:MAX_EVENTS])


def mutate_plan(
    plan: FaultPlan,
    rng: random.Random,
    n_nodes: int,
    horizon: float,
    rounds: Optional[int] = None,
) -> FaultPlan:
    """Apply 1–3 random mutators (or exactly ``rounds``) to ``plan``."""
    count = rounds if rounds is not None else rng.randint(1, 3)
    for _ in range(max(1, count)):
        mutator = MUTATORS[rng.randrange(len(MUTATORS))]
        plan = mutator(plan, rng, n_nodes, horizon)
    return plan


__all__ = [
    "MAX_EVENTS",
    "MAX_PROB",
    "MUTATORS",
    "add_event",
    "crossover",
    "mutate_plan",
    "random_event",
    "remove_event",
    "repair_crash",
    "retarget_event",
    "retime_event",
    "scale_intensity",
    "split_partition",
]
