"""Delta-debugging shrinker for violating fault plans.

A campaign's counterexamples are mutation lineages: most of their
events are along for the ride.  The shrinker reduces one to a *locally
minimal* reproduction:

1. **ddmin over the event set** — classic delta debugging (Zeller):
   try dropping chunks of events, halving the chunk size when nothing
   drops, until single events remain;
2. **one-at-a-time sweep to a fixpoint** — after ddmin, re-try
   removing each remaining event; the result is 1-minimal: removing
   *any* single event makes the violation vanish;
3. **horizon trimming** — binary-search the earliest execution horizon
   that still shows the violation, so the artifact replays in the
   shortest run that demonstrates it.

Every candidate re-runs under the counterexample's own cluster seed
with probes off (live safety checks only), so the oracle is exactly
"does this (plan, seed) still break the property live".  Shrinking is
deterministic: same input, same minimal plan, same digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..chaos import FaultPlan
from .executor import FuzzTarget


@dataclass
class ShrinkResult:
    """The outcome of shrinking one counterexample."""

    original: FaultPlan
    shrunk: FaultPlan
    seed: int
    violations: List[str] = field(default_factory=list)
    horizon: Optional[float] = None
    executions_used: int = 0
    confirmed: bool = False

    @property
    def ratio(self) -> float:
        """Events kept / events given (1.0 = nothing shrank)."""
        if not len(self.original):
            return 1.0
        return len(self.shrunk) / len(self.original)

    def summary(self) -> str:
        horizon = "" if self.horizon is None else f" horizon={self.horizon:g}"
        return (
            f"{len(self.original)} events -> {len(self.shrunk)}"
            f" (ratio {self.ratio:.2f}){horizon}"
            f" confirmed={self.confirmed} runs={self.executions_used}"
        )


class Shrinker:
    """Shrinks violating plans against one target."""

    # Horizon binary search stops refining below this (simulated s).
    HORIZON_RESOLUTION = 0.5

    def __init__(self, target: FuzzTarget, max_executions: int = 200) -> None:
        self.target = target
        self.max_executions = max_executions
        self._used = 0

    def shrink(self, plan: FaultPlan, seed: int) -> ShrinkResult:
        """Reduce ``plan`` to a locally minimal violating schedule."""
        self._used = 0
        result = ShrinkResult(original=plan, shrunk=plan, seed=seed)
        if not self._violates(plan.events, seed):
            # The input does not reproduce — nothing sound to shrink.
            result.executions_used = self._used
            return result
        events = self._ddmin(list(plan.events), seed)
        events = self._one_at_a_time(events, seed)
        result.shrunk = FaultPlan(events=events)
        result.horizon = self._trim_horizon(result.shrunk, seed)
        # Confirmation run: the minimal plan, the same seed, once more —
        # the final word on whether the artifact reproduces.
        final = self.target.execute(result.shrunk, seed, probes=False)
        self._used += 1
        result.violations = list(final.violations)
        result.confirmed = final.violated
        result.executions_used = self._used
        return result

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------

    def _violates(self, events: List, seed: int) -> bool:
        if self._used >= self.max_executions:
            return False
        self._used += 1
        execution = self.target.execute(FaultPlan(events=list(events)), seed,
                                        probes=False)
        return execution.violated

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _ddmin(self, events: List, seed: int) -> List:
        """Zeller's ddmin over the event list."""
        granularity = 2
        while len(events) >= 2:
            chunk = max(1, len(events) // granularity)
            reduced = False
            start = 0
            while start < len(events):
                candidate = events[:start] + events[start + chunk:]
                if candidate and self._violates(candidate, seed):
                    events = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    # Restart the scan at this granularity.
                    start = 0
                    chunk = max(1, len(events) // granularity)
                    continue
                start += chunk
            if not reduced:
                if granularity >= len(events):
                    break
                granularity = min(len(events), granularity * 2)
        return events

    def _one_at_a_time(self, events: List, seed: int) -> List:
        """Drop single events until a fixpoint: the 1-minimality pass."""
        changed = True
        while changed and len(events) > 1:
            changed = False
            for index in range(len(events)):
                candidate = events[:index] + events[index + 1:]
                if self._violates(candidate, seed):
                    events = candidate
                    changed = True
                    break
        return events

    def _trim_horizon(self, plan: FaultPlan, seed: int) -> float:
        """Smallest execution horizon (to resolution) still violating."""
        target = self.target
        full = target.horizon
        low, high = max(plan.horizon, self.HORIZON_RESOLUTION), full
        if low >= high:
            return full
        original = target.horizon
        best = full
        try:
            while high - low > self.HORIZON_RESOLUTION:
                mid = (low + high) / 2.0
                target.horizon = mid
                if self._violates(list(plan.events), seed):
                    best = mid
                    high = mid
                else:
                    low = mid
        finally:
            target.horizon = original
        return round(best, 3)


def shrink_counterexample(target: FuzzTarget, plan: FaultPlan, seed: int,
                          max_executions: int = 200) -> ShrinkResult:
    """Convenience wrapper: shrink one ``(plan, seed)`` counterexample."""
    return Shrinker(target, max_executions=max_executions).shrink(plan, seed)


__all__ = ["ShrinkResult", "Shrinker", "shrink_counterexample"]
