"""Reproduction artifacts: counterexample files and causal forensics.

A counterexample artifact is one JSON file that fully reproduces a
discovered safety violation: the (shrunk) :class:`FaultPlan`, the
cluster seed, the target name, the violations observed, and — when
forensics ran — the happens-before causal chain that carried the
execution into the bad state, rendered by
:mod:`repro.obs.forensics`.

``examples/corpus/`` holds the curated set; the regression test
replays every entry and asserts the violation (and trace digest)
still reproduces byte-for-byte.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..chaos import FaultPlan
from ..obs.causal import HappensBeforeGraph
from ..obs.forensics import CausalExplanation, explain_chain
from .executor import ExecutionResult, FuzzTarget, make_target

ARTIFACT_VERSION = 1


# ----------------------------------------------------------------------
# Forensics
# ----------------------------------------------------------------------


def violation_nodes(violations: List[str]) -> List[int]:
    """Node ids named in violation messages (``node 3 ...``, ``3->1``)."""
    nodes: List[int] = []
    for message in violations:
        body = message.split(":", 1)[-1]
        for token in body.replace("->", " ").split():
            if token.isdigit():
                nodes.append(int(token))
    return nodes


def violation_time(violations: List[str]) -> Optional[float]:
    """The earliest ``t=<time>`` stamp in the violation messages."""
    times: List[float] = []
    for message in violations:
        head = message.split(":", 1)[0].strip()
        if head.startswith("t="):
            try:
                times.append(float(head[2:]))
            except ValueError:
                continue
    return min(times) if times else None


def forensics_for(target: FuzzTarget, plan: FaultPlan,
                  seed: int) -> Optional[CausalExplanation]:
    """Re-run a counterexample with causal tracing and explain it.

    The re-run stamps every send/deliver/timer/choice with
    happens-before metadata; the explanation is the minimal causal
    chain ending at the last delivery into a node the violation names
    (falling back to the last delivery anywhere) — "what sequence of
    sends and deliveries produced the state the property check
    rejected".
    """
    execution = target.execute(plan, seed, probes=False, causal=True,
                               keep_cluster=True)
    if not execution.violated or execution.cluster is None:
        return None
    graph = HappensBeforeGraph.from_trace(execution.cluster.sim.trace)
    deliveries = graph.by_category("net.deliver")
    # Only deliveries that could have *caused* the violation: at or
    # before the instant the property check first failed.
    when = violation_time(execution.violations)
    if when is not None:
        capped = [e for e in deliveries if e.time <= when]
        deliveries = capped or deliveries
    if not deliveries:
        return None
    suspects = set(violation_nodes(execution.violations))
    anchored = [e for e in deliveries if e.node in suspects]
    anchor = (anchored or deliveries)[-1]
    return explain_chain(
        graph, anchor.id,
        reason=execution.violations[0],
        trim_at_choice=False,
    )


# ----------------------------------------------------------------------
# Artifact files
# ----------------------------------------------------------------------


def counterexample_dict(
    target: FuzzTarget,
    plan: FaultPlan,
    seed: int,
    violations: List[str],
    *,
    campaign_seed: Optional[int] = None,
    execution: Optional[int] = None,
    original_events: Optional[int] = None,
    horizon: Optional[float] = None,
    trace_digest: str = "",
    explanation: Optional[CausalExplanation] = None,
) -> Dict[str, Any]:
    """The canonical JSON-able artifact for one counterexample."""
    return {
        "version": ARTIFACT_VERSION,
        "target": target.name,
        "seed": seed,
        "campaign_seed": campaign_seed,
        "execution": execution,
        "plan": plan.to_dict(),
        "plan_text": plan.to_text(),
        "plan_digest": plan.digest(),
        "violations": list(violations),
        "original_events": original_events,
        "shrunk_events": len(plan),
        "horizon": horizon,
        "trace_digest": trace_digest,
        "forensics": None if explanation is None else explanation.to_dict(),
    }


def write_counterexample(path: str, artifact: Dict[str, Any]) -> str:
    """Write one artifact as pretty, key-sorted JSON; return ``path``."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_counterexample(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: unsupported artifact version {artifact.get('version')!r}"
        )
    return artifact


def replay_counterexample(
    artifact: Dict[str, Any],
    target: Optional[FuzzTarget] = None,
) -> Tuple[ExecutionResult, bool]:
    """Replay an artifact; return the execution and whether it still
    reproduces (same violation *and*, when recorded, same trace
    digest — the byte-level determinism contract)."""
    if target is None:
        target = make_target(artifact["target"])
    plan = FaultPlan.from_dict(artifact["plan"])
    execution = target.execute(plan, int(artifact["seed"]), probes=False)
    reproduces = execution.violated
    recorded = artifact.get("trace_digest")
    if recorded:
        reproduces = reproduces and execution.trace_digest == recorded
    return execution, reproduces


def corpus_paths(directory: str) -> List[str]:
    """Artifact files under ``directory``, sorted for determinism."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


__all__ = [
    "ARTIFACT_VERSION",
    "corpus_paths",
    "counterexample_dict",
    "forensics_for",
    "load_counterexample",
    "replay_counterexample",
    "violation_nodes",
    "violation_time",
    "write_counterexample",
]
