"""Adversarial scenario search: coverage-guided fuzzing of fault plans.

The chaos layer (:mod:`repro.chaos`) made the adversary *expressible*;
this package makes it *searchable*.  A :class:`FuzzCampaign` mutates
:class:`~repro.chaos.FaultPlan` schedules against a
:class:`~repro.fuzz.executor.FuzzTarget`, guided by trace-coverage
novelty and by near-violation scores mined from consequence
prediction (:class:`~repro.mc.ConsequencePredictor`) — the same
machinery CrystalBall uses to steer executions *away* from trouble,
here inverted to hunt it.  Discovered counterexamples are shrunk to
locally minimal plans (:mod:`repro.fuzz.shrink`) and packaged as
replayable artifacts with causal forensics
(:mod:`repro.fuzz.artifacts`).
"""

from .coverage import CoverageMap, near_violation_score
from .engine import CampaignResult, CorpusEntry, Counterexample, FuzzCampaign
from .executor import (
    ExecutionResult,
    FuzzTarget,
    PaxosFuzzTarget,
    RandTreeFuzzTarget,
    TARGETS,
    accepted_coherent,
    make_target,
    paxos_agreement,
)
from .mutators import MUTATORS, crossover, mutate_plan, random_event
from .shrink import ShrinkResult, Shrinker, shrink_counterexample
from .artifacts import (
    corpus_paths,
    counterexample_dict,
    forensics_for,
    load_counterexample,
    replay_counterexample,
    write_counterexample,
)

__all__ = [
    "CampaignResult",
    "CorpusEntry",
    "Counterexample",
    "CoverageMap",
    "ExecutionResult",
    "FuzzCampaign",
    "FuzzTarget",
    "MUTATORS",
    "PaxosFuzzTarget",
    "RandTreeFuzzTarget",
    "ShrinkResult",
    "Shrinker",
    "TARGETS",
    "accepted_coherent",
    "corpus_paths",
    "counterexample_dict",
    "crossover",
    "forensics_for",
    "load_counterexample",
    "make_target",
    "mutate_plan",
    "near_violation_score",
    "paxos_agreement",
    "random_event",
    "replay_counterexample",
    "shrink_counterexample",
    "write_counterexample",
]
