"""Choice points: the unit of exposed non-determinism.

The paper's programming model (Section 3.1) has applications expose
choices — "the runtime can then consider several peers and return one" —
instead of hard-coding resolution policy.  A :class:`ChoicePoint`
packages one such decision: where it arose, the candidate values, and
application-provided scoring context.

Resolvers (``repro.choice.resolvers`` and the predictive resolver in
``repro.runtime``) turn a choice point into a concrete value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class ChoiceError(Exception):
    """Raised for empty candidate lists or failed resolution."""


class ConfigurationError(ChoiceError):
    """Raised at install/construction time for invalid resolver wiring.

    Misconfiguration (a missing or non-resolver fallback, an amortized
    policy without a degradation target) should fail where the wiring
    happens, not thousands of dispatches later inside ``resolve()``.
    """


@dataclass
class ChoicePoint:
    """One exposed decision.

    :param label: stable identifier of the decision site, e.g.
        ``"forward-target"`` or ``"handler:JoinRequest"``.
    :param candidates: the non-empty list of values the application is
        willing to accept.  Order is meaningful: deterministic resolvers
        (e.g. first/fixed) use it.
    :param node_id: the deciding node.
    :param info: optional application hints for model-based scoring
        (e.g. ``{"purpose": "join-forward"}``).
    """

    label: str
    candidates: List[Any]
    node_id: int
    info: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ChoiceError(f"choice {self.label!r} at node {self.node_id} has no candidates")


class ChoiceResolver:
    """Base interface: turn a :class:`ChoicePoint` into one candidate.

    ``node`` is the hosting :class:`~repro.statemachine.node.Node` when
    resolving live (giving access to the predictive model and runtime),
    and ``None`` when resolving inside a sandboxed exploration.
    """

    name = "abstract"

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = ["ChoicePoint", "ChoiceError", "ChoiceResolver", "ConfigurationError"]
