"""Baseline choice resolvers.

These cover the non-predictive resolution strategies the paper
contrasts against: hard-coded/deterministic policies (first, fixed,
scripted), random selection (the Choice-Random setup of Section 4),
round-robin (the Mencius-style proposer rotation of Section 3.1), and
greedy model-based scoring.  The full predictive resolver, which uses
consequence prediction over snapshots, lives in ``repro.runtime``
because it needs the CrystalBall machinery.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from .choicepoint import ChoiceError, ChoicePoint, ChoiceResolver

ScoreFn = Callable[[Any, ChoicePoint, Optional[object]], float]


class FirstResolver(ChoiceResolver):
    """Deterministically pick the first candidate."""

    name = "first"

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        return point.candidates[0]


class FixedResolver(ChoiceResolver):
    """Always pick the candidate at a fixed index (clamped)."""

    name = "fixed"

    def __init__(self, index: int = 0) -> None:
        self.index = index

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        return point.candidates[min(self.index, len(point.candidates) - 1)]


class RandomResolver(ChoiceResolver):
    """Uniform random choice.

    When resolving for a live node, draws come from the node's named
    simulation stream (so runs stay reproducible per seed); otherwise
    from a private seeded generator.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        if node is not None:
            rng = node.sim.rng.stream(f"node{node.node_id}.choice")
        else:
            rng = self._rng
        return rng.choice(point.candidates)


class RoundRobinResolver(ChoiceResolver):
    """Rotate through candidates per choice label.

    This reproduces the Mencius-style schedule from Section 3.1: "a
    recent improvement achieves significant performance gains ... by
    allowing every node to propose according to a round-robin schedule".
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        count = self._counters.get(point.label, 0)
        self._counters[point.label] = count + 1
        return point.candidates[count % len(point.candidates)]


class ScriptedResolver(ChoiceResolver):
    """Replay a per-label script of values (for tests and replays)."""

    name = "scripted"

    def __init__(self, script: Dict[str, List[Any]], fallback: Optional[ChoiceResolver] = None) -> None:
        self._script = {label: list(values) for label, values in script.items()}
        self._fallback = fallback or FirstResolver()

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        queue = self._script.get(point.label)
        if not queue:
            return self._fallback.resolve(point, node)
        value = queue.pop(0)
        if value not in point.candidates:
            raise ChoiceError(
                f"scripted value {value!r} not a candidate of {point.label!r}"
            )
        return value


class ProportionalResolver(ChoiceResolver):
    """Sample candidates with probability proportional to their score.

    The fleet-decorrelation pattern this reproduction kept needing (see
    docs/internals.md §5): when many nodes share similar model views,
    *argmax* resolution herds them onto one target; sampling
    proportionally to ``max(score, 0) + base_weight`` keeps decisions
    biased toward good candidates while spreading the fleet.

    Draws come from the node's named simulation stream when available
    (reproducible per seed), else from a private seeded generator.
    """

    name = "proportional"

    def __init__(self, score_fn: ScoreFn, base_weight: float = 1.0, seed: int = 0) -> None:
        if base_weight < 0:
            raise ChoiceError(f"base_weight must be >= 0, got {base_weight!r}")
        self.score_fn = score_fn
        self.base_weight = base_weight
        self._rng = random.Random(seed)

    def _rng_for(self, node: Optional[object]):
        if node is not None:
            return node.sim.rng.stream(f"node{node.node_id}.proportional")
        return self._rng

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        rng = self._rng_for(node)
        weights = [
            max(0.0, self.score_fn(candidate, point, node)) + self.base_weight
            for candidate in point.candidates
        ]
        total = sum(weights)
        if total <= 0:
            return rng.choice(point.candidates)
        pick = rng.random() * total
        cumulative = 0.0
        for candidate, weight in zip(point.candidates, weights):
            cumulative += weight
            if pick <= cumulative:
                return candidate
        return point.candidates[-1]


class GreedyResolver(ChoiceResolver):
    """Pick the candidate maximizing a score function.

    ``score_fn(candidate, point, node)`` may consult the node's
    predictive model (e.g. pick the peer with the lowest estimated
    RTT).  Ties go to the earliest candidate, keeping resolution
    deterministic.
    """

    name = "greedy"

    def __init__(self, score_fn: ScoreFn) -> None:
        self.score_fn = score_fn

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        best = None
        best_score = float("-inf")
        for candidate in point.candidates:
            score = self.score_fn(candidate, point, node)
            if score > best_score:
                best = candidate
                best_score = score
        return best


__all__ = [
    "FirstResolver",
    "FixedResolver",
    "RandomResolver",
    "RoundRobinResolver",
    "ScriptedResolver",
    "GreedyResolver",
    "ProportionalResolver",
    "ScoreFn",
]
