"""Objective specification language (Section 3.2).

The developer "may specify the objectives that the runtime needs to
maximize".  An :class:`Objective` scores a *world view* — any object the
evaluator supplies (a model-checker :class:`~repro.mc.world.WorldState`,
or a predicted-future summary).  Higher is better.

Three primitive families and combinators:

* :class:`SafetyObjective` — a predicate that must hold; violation
  contributes a large negative penalty (the "number of safety and
  liveness properties expected to hold" objective from the paper).
* :class:`LivenessObjective` — a progress predicate rewarded when true
  (a practical proxy for liveness over finite horizons).
* :class:`PerformanceObjective` — an arbitrary scalar metric, with a
  ``minimize`` flag for costs such as tree depth or latency; per the
  paper, "an expressive performance specification language can, in
  fact, subsume safety and liveness specification languages".
* :class:`WeightedObjective` — weighted sum of sub-objectives.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

Predicate = Callable[[Any], bool]
Metric = Callable[[Any], float]

SAFETY_PENALTY = 1_000_000.0
LIVENESS_REWARD = 1_000.0


class Objective:
    """Scores a world view; higher is better."""

    name = "objective"

    def score(self, world: Any) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SafetyObjective(Objective):
    """A property that must always hold.

    Scores ``0`` when the predicate holds and ``-penalty`` when it is
    violated, so any violating future loses against any non-violating
    one regardless of performance terms.
    """

    def __init__(self, name: str, predicate: Predicate, penalty: float = SAFETY_PENALTY) -> None:
        self.name = name
        self.predicate = predicate
        self.penalty = penalty

    def score(self, world: Any) -> float:
        return 0.0 if self.predicate(world) else -self.penalty

    def holds(self, world: Any) -> bool:
        """Whether the safety predicate holds in ``world``."""
        return bool(self.predicate(world))


class LivenessObjective(Objective):
    """A progress condition rewarded when reached within the horizon."""

    def __init__(self, name: str, predicate: Predicate, reward: float = LIVENESS_REWARD) -> None:
        self.name = name
        self.predicate = predicate
        self.reward = reward

    def score(self, world: Any) -> float:
        return self.reward if self.predicate(world) else 0.0


class PerformanceObjective(Objective):
    """A scalar metric over a world view.

    With ``minimize=True`` the metric is negated, so "minimize maximum
    tree depth" is ``PerformanceObjective("depth", depth_fn, minimize=True)``.
    ``weight`` scales the contribution.
    """

    def __init__(
        self,
        name: str,
        metric: Metric,
        minimize: bool = False,
        weight: float = 1.0,
    ) -> None:
        self.name = name
        self.metric = metric
        self.minimize = minimize
        self.weight = weight

    def score(self, world: Any) -> float:
        value = float(self.metric(world))
        return -self.weight * value if self.minimize else self.weight * value


class WeightedObjective(Objective):
    """Weighted sum of sub-objectives."""

    def __init__(self, parts: Sequence[Tuple[float, Objective]], name: str = "weighted") -> None:
        self.name = name
        self.parts: List[Tuple[float, Objective]] = list(parts)

    def score(self, world: Any) -> float:
        return sum(weight * objective.score(world) for weight, objective in self.parts)


def combine(*objectives: Objective, name: str = "combined") -> Objective:
    """Equal-weight combination of several objectives."""
    return WeightedObjective([(1.0, obj) for obj in objectives], name=name)


__all__ = [
    "Objective",
    "SafetyObjective",
    "LivenessObjective",
    "PerformanceObjective",
    "WeightedObjective",
    "combine",
    "SAFETY_PENALTY",
    "LIVENESS_REWARD",
]
