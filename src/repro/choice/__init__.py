"""The choice-exposing programming model (the paper's core contribution).

Applications expose decisions as :class:`ChoicePoint` objects via
``Service.choose``; resolvers turn them into values; objectives tell
the runtime what to maximize when it resolves predictively.
"""

from .choicepoint import ChoiceError, ChoicePoint, ChoiceResolver, ConfigurationError
from .objectives import (
    LIVENESS_REWARD,
    SAFETY_PENALTY,
    LivenessObjective,
    Objective,
    PerformanceObjective,
    SafetyObjective,
    WeightedObjective,
    combine,
)
from .resolvers import (
    FirstResolver,
    ProportionalResolver,
    FixedResolver,
    GreedyResolver,
    RandomResolver,
    RoundRobinResolver,
    ScriptedResolver,
)

__all__ = [
    "ChoiceError",
    "ChoicePoint",
    "ChoiceResolver",
    "ConfigurationError",
    "LIVENESS_REWARD",
    "SAFETY_PENALTY",
    "LivenessObjective",
    "Objective",
    "PerformanceObjective",
    "SafetyObjective",
    "WeightedObjective",
    "combine",
    "FirstResolver",
    "ProportionalResolver",
    "FixedResolver",
    "GreedyResolver",
    "RandomResolver",
    "RoundRobinResolver",
    "ScriptedResolver",
]
