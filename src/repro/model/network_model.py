"""The predictive network model.

Section 3.3: distributed systems "collect some information about the
network and, often implicitly, build a network model to predict network
performance ... we argue that the network and the system model should
be exported and kept in the runtime".  :class:`NetworkModel` is that
exported model: per-pair EWMA estimates of latency, bandwidth, and loss
fed by passive observation or active probing, with age/sample
confidence, mergeable across nodes (the iPlane-style shared information
plane), and bootstrappable from ground truth for oracle experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from .confidence import DEFAULT_HALF_LIFE, combined_confidence

EWMA_ALPHA = 0.3


@dataclass
class LinkEstimate:
    """EWMA estimate of one directed link's performance.

    Each field initializes from its *own* first sample (a latency-only
    observation must not make a later bandwidth sample average against
    zero), so per-field sample counts are tracked separately.
    """

    latency: float = 0.0
    bandwidth: float = 0.0
    loss: float = 0.0
    updated_at: float = 0.0
    samples: int = 0
    latency_samples: int = 0
    bandwidth_samples: int = 0
    loss_samples: int = 0

    def observe(
        self,
        now: float,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
        loss: Optional[float] = None,
        alpha: float = EWMA_ALPHA,
    ) -> None:
        """Fold one measurement into the estimate."""
        if latency is not None:
            if self.latency_samples == 0:
                self.latency = latency
            else:
                self.latency += alpha * (latency - self.latency)
            self.latency_samples += 1
        if bandwidth is not None:
            if self.bandwidth_samples == 0:
                self.bandwidth = bandwidth
            else:
                self.bandwidth += alpha * (bandwidth - self.bandwidth)
            self.bandwidth_samples += 1
        if loss is not None:
            if self.loss_samples == 0:
                self.loss = loss
            else:
                self.loss += alpha * (loss - self.loss)
            self.loss_samples += 1
        self.samples += 1
        self.updated_at = now

    def confidence(self, now: float, half_life: float = DEFAULT_HALF_LIFE) -> float:
        """Confidence in this estimate at time ``now``."""
        return combined_confidence(now - self.updated_at, self.samples, half_life)


class NetworkModel:
    """Per-pair network performance estimates kept in the runtime."""

    def __init__(
        self,
        default_latency: float = 0.05,
        default_bandwidth: float = 10e6,
        default_loss: float = 0.0,
    ) -> None:
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        self.default_loss = default_loss
        self._links: Dict[Tuple[int, int], LinkEstimate] = {}

    # ------------------------------------------------------------------
    # Feeding the model
    # ------------------------------------------------------------------

    def _estimate(self, src: int, dst: int) -> LinkEstimate:
        est = self._links.get((src, dst))
        if est is None:
            est = LinkEstimate()
            self._links[(src, dst)] = est
        return est

    def observe_latency(self, src: int, dst: int, latency: float, now: float) -> None:
        """Record one one-way latency measurement."""
        self._estimate(src, dst).observe(now, latency=latency)

    def observe_rtt(self, src: int, dst: int, rtt: float, now: float) -> None:
        """Record a round-trip measurement (split symmetrically)."""
        half = rtt / 2.0
        self._estimate(src, dst).observe(now, latency=half)
        self._estimate(dst, src).observe(now, latency=half)

    def observe_bandwidth(self, src: int, dst: int, bandwidth: float, now: float) -> None:
        """Record one bandwidth measurement in bits/s."""
        self._estimate(src, dst).observe(now, bandwidth=bandwidth)

    def observe_loss(self, src: int, dst: int, loss: float, now: float) -> None:
        """Record one loss-rate measurement in [0, 1)."""
        self._estimate(src, dst).observe(now, loss=loss)

    def bootstrap_from_topology(self, topology, now: float = 0.0) -> None:
        """Load ground truth from a topology (oracle / iPlane mode).

        Experiments that are not about model convergence use this to
        start the predictive model from accurate measurements, the way
        iPlane would provide them to every application on the node.
        """
        for i in topology.node_ids:
            for j in topology.node_ids:
                if i == j:
                    continue
                link = topology.link(i, j)
                est = self._estimate(i, j)
                est.observe(now, latency=link.latency, bandwidth=link.bandwidth, loss=link.loss)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def known_pairs(self) -> Iterable[Tuple[int, int]]:
        """Directed pairs with at least one observation."""
        return self._links.keys()

    def latency(self, src: int, dst: int) -> float:
        """Estimated one-way latency (default when unknown)."""
        if src == dst:
            return 0.0
        est = self._links.get((src, dst))
        if est is None or est.samples == 0:
            return self.default_latency
        return est.latency

    def bandwidth(self, src: int, dst: int) -> float:
        """Estimated bandwidth in bits/s (default when unknown)."""
        est = self._links.get((src, dst))
        if est is None or est.samples == 0 or est.bandwidth <= 0:
            return self.default_bandwidth
        return est.bandwidth

    def loss(self, src: int, dst: int) -> float:
        """Estimated loss rate (default when unknown)."""
        est = self._links.get((src, dst))
        if est is None or est.samples == 0:
            return self.default_loss
        return est.loss

    def rtt(self, a: int, b: int) -> float:
        """Estimated round-trip time between ``a`` and ``b``."""
        return self.latency(a, b) + self.latency(b, a)

    def transfer_time(self, src: int, dst: int, size_bytes: int) -> float:
        """Predicted one-way delivery time for ``size_bytes``."""
        return self.latency(src, dst) + (size_bytes * 8.0) / self.bandwidth(src, dst)

    def confidence(self, src: int, dst: int, now: float, half_life: float = DEFAULT_HALF_LIFE) -> float:
        """Confidence in the (src, dst) estimate; 0 when never observed."""
        est = self._links.get((src, dst))
        if est is None:
            return 0.0
        return est.confidence(now, half_life)

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------

    def merge(self, other: "NetworkModel") -> None:
        """Adopt the fresher estimate per pair from ``other``.

        This is how runtime instances share their models, "enabling
        cost and overhead reductions when building a network
        performance model" across applications and nodes.
        """
        for pair, theirs in other._links.items():
            mine = self._links.get(pair)
            if mine is None or theirs.updated_at > mine.updated_at:
                self._links[pair] = LinkEstimate(
                    latency=theirs.latency,
                    bandwidth=theirs.bandwidth,
                    loss=theirs.loss,
                    updated_at=theirs.updated_at,
                    samples=theirs.samples,
                    latency_samples=theirs.latency_samples,
                    bandwidth_samples=theirs.bandwidth_samples,
                    loss_samples=theirs.loss_samples,
                )

    def export_entries(self) -> list:
        """Serialize all estimates as plain tuples (for ModelShareMsg)."""
        return [
            (src, dst, est.latency, est.bandwidth, est.loss, est.updated_at, est.samples)
            for (src, dst), est in sorted(self._links.items())
        ]

    def import_entries(self, entries) -> int:
        """Adopt shared estimates, keeping the fresher one per pair.

        Returns how many pairs were updated.  Imported estimates carry
        their original timestamps, so confidence decay stays honest.
        """
        updated = 0
        for src, dst, latency, bandwidth, loss, updated_at, samples in entries:
            mine = self._links.get((src, dst))
            if mine is not None and mine.updated_at >= updated_at:
                continue
            self._links[(src, dst)] = LinkEstimate(
                latency=latency,
                bandwidth=bandwidth,
                loss=loss,
                updated_at=updated_at,
                samples=samples,
                latency_samples=samples,
                bandwidth_samples=samples if bandwidth > 0 else 0,
                loss_samples=samples,
            )
            updated += 1
        return updated

    def __repr__(self) -> str:
        return f"NetworkModel(pairs={len(self._links)})"


__all__ = ["NetworkModel", "LinkEstimate", "EWMA_ALPHA"]
