"""The predictive system model kept in the runtime (Section 3.3).

Network model (per-pair latency/bandwidth/loss estimates with
confidence), state model (neighbor checkpoints and consistent cuts),
and generic nodes for the unknown remainder of the system.
"""

from .confidence import (
    DEFAULT_HALF_LIFE,
    age_confidence,
    combined_confidence,
    sample_confidence,
)
from .generic_node import GENERIC_NODE_ID, GenericNode
from .network_model import EWMA_ALPHA, LinkEstimate, NetworkModel
from .state_model import NeighborCheckpoint, StateModel

__all__ = [
    "DEFAULT_HALF_LIFE",
    "age_confidence",
    "combined_confidence",
    "sample_confidence",
    "GENERIC_NODE_ID",
    "GenericNode",
    "EWMA_ALPHA",
    "LinkEstimate",
    "NetworkModel",
    "NeighborCheckpoint",
    "StateModel",
]
