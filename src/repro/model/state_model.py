"""The state model: what this node knows about other participants.

Section 3.3: "Every node also maintains some amount of local state, and
collects information about other participants.  We refer to this
information as the state model."  The CrystalBall controller
"periodically collects a consistent set of checkpoints from each of the
node's neighbors" (Section 2); :class:`StateModel` stores those
checkpoints with their epochs and ages and can assemble the most recent
consistent cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..statemachine.serialization import snapshot_value


@dataclass
class NeighborCheckpoint:
    """One collected checkpoint of a neighbor's service state.

    ``timers`` holds the neighbor's pending timers as ``(name, delay,
    payload)`` tuples, so exploration can consider the actions the
    neighbor will take on its own.
    """

    node_id: int
    epoch: int
    taken_at: float
    state: Dict[str, Any]
    timers: List[tuple] = field(default_factory=list)


class StateModel:
    """Latest known checkpoint per participant, for one observing node."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._checkpoints: Dict[int, NeighborCheckpoint] = {}
        # Delta baselines: the last full checkpoint per sender that
        # deltas may be patched against.  Kept here (not in the
        # controller) so forgetting a node drops its baseline too.
        self._baselines: Dict[int, NeighborCheckpoint] = {}

    def update(
        self,
        node_id: int,
        epoch: int,
        taken_at: float,
        state: Dict[str, Any],
        timers: Optional[List[tuple]] = None,
    ) -> bool:
        """Store a checkpoint if it is newer than what we hold.

        Newer means a higher epoch, or the same epoch taken later.
        Returns whether the model changed.
        """
        current = self._checkpoints.get(node_id)
        if current is not None:
            if (epoch, taken_at) <= (current.epoch, current.taken_at):
                return False
        self._checkpoints[node_id] = NeighborCheckpoint(
            node_id=node_id,
            epoch=epoch,
            taken_at=taken_at,
            state=snapshot_value(state),
            timers=[tuple(t) for t in (timers or [])],
        )
        return True

    def timers_of(self, node_id: int) -> List[tuple]:
        """Pending timers from the node's latest checkpoint."""
        checkpoint = self._checkpoints.get(node_id)
        if checkpoint is None or not checkpoint.timers:
            return []
        return list(checkpoint.timers)

    def get(self, node_id: int) -> Optional[NeighborCheckpoint]:
        """Latest checkpoint for ``node_id`` (or ``None``)."""
        return self._checkpoints.get(node_id)

    def set_baseline(self, node_id: int, epoch: int) -> Optional[NeighborCheckpoint]:
        """Adopt the stored checkpoint for ``node_id`` as the delta
        baseline, if it is exactly ``epoch`` (i.e. the full checkpoint
        just folded in was not dropped as stale).  Returns the adopted
        baseline, or ``None`` if none was installed.

        The baseline aliases the stored :class:`NeighborCheckpoint`
        object, which is never mutated — ``update`` replaces entries
        wholesale — so no extra copy is needed.
        """
        cp = self._checkpoints.get(node_id)
        if cp is None or cp.epoch != epoch:
            return None
        current = self._baselines.get(node_id)
        if current is not None and current.epoch > epoch:
            return None
        self._baselines[node_id] = cp
        return cp

    def baseline(self, node_id: int) -> Optional[NeighborCheckpoint]:
        """The delta baseline held for ``node_id`` (or ``None``)."""
        return self._baselines.get(node_id)

    def forget(self, node_id: int) -> None:
        """Drop what we know about ``node_id`` (e.g. it crashed)."""
        self._checkpoints.pop(node_id, None)
        self._baselines.pop(node_id, None)

    def known_nodes(self) -> List[int]:
        """Node ids with a stored checkpoint, ascending."""
        return sorted(self._checkpoints)

    def age(self, node_id: int, now: float) -> Optional[float]:
        """Age in seconds of the checkpoint for ``node_id``."""
        cp = self._checkpoints.get(node_id)
        if cp is None:
            return None
        return now - cp.taken_at

    def consistent_cut(self, now: float, max_age: Optional[float] = None) -> Dict[int, Dict[str, Any]]:
        """States of all known nodes, restricted to the common epoch.

        The cut contains only checkpoints from the *highest epoch that
        every known node has reached* — a simple consistency rule
        matching CrystalBall's epoch-stamped snapshot collection —
        optionally dropping checkpoints older than ``max_age``.

        Only the latest checkpoint per node is stored, so a node whose
        checkpoint is already past the cut epoch has no snapshot *from*
        that epoch and is omitted rather than mixed in inconsistently.
        """
        candidates = [
            cp for cp in self._checkpoints.values()
            if max_age is None or (now - cp.taken_at) <= max_age
        ]
        if not candidates:
            return {}
        cut_epoch = min(cp.epoch for cp in candidates)
        return {
            cp.node_id: snapshot_value(cp.state)
            for cp in candidates
            if cp.epoch == cut_epoch
        }

    def latest_states(self) -> Dict[int, Dict[str, Any]]:
        """Most recent state per node, ignoring epoch consistency."""
        return {nid: snapshot_value(cp.state) for nid, cp in self._checkpoints.items()}

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __repr__(self) -> str:
        return f"StateModel(owner={self.owner_id}, known={self.known_nodes()})"


__all__ = ["StateModel", "NeighborCheckpoint"]
