"""Generic (dummy) nodes: modelling the unknown part of the system.

Section 3.3.2: "To move the horizon beyond the currently collected node
neighborhood, we propose the notion of a generic (dummy) node.  The
state of such a node is under-specified, which allows the model to
explicitly take [into account] the partial nature of the available
information."

A :class:`GenericNode` carries no concrete state; instead it declares
*havoc templates* — message constructors describing what an unknown
participant could plausibly send.  The explorer can inject these as
extra enabled actions, which over-approximates the environment without
symbolic execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence

MessageTemplate = Callable[[int], Any]

GENERIC_NODE_ID = -1


@dataclass
class GenericNode:
    """An under-specified participant outside the known neighborhood.

    :param node_id: identity used as the source of injected messages
        (defaults to the reserved :data:`GENERIC_NODE_ID`).
    :param templates: callables mapping a *target* node id to a message
        the generic node could send it.
    """

    node_id: int = GENERIC_NODE_ID
    templates: List[MessageTemplate] = field(default_factory=list)

    def add_template(self, template: MessageTemplate) -> None:
        """Register one more plausible message constructor."""
        self.templates.append(template)

    def possible_messages(self, targets: Sequence[int]) -> List[tuple]:
        """All ``(src, dst, msg)`` injections against the given targets."""
        out = []
        for target in targets:
            for template in self.templates:
                msg = template(target)
                if msg is not None:
                    out.append((self.node_id, target, msg))
        return out


__all__ = ["GenericNode", "GENERIC_NODE_ID", "MessageTemplate"]
