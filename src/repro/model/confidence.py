"""Confidence in model information as a function of its age.

Section 3.3.2: "To quantify the quality of the information in the
model, it may be productive to incorporate confidence in the
information as a function of its age."  We use exponential decay with a
configurable half-life, scaled by a saturating sample-count factor.
"""

from __future__ import annotations

import math

DEFAULT_HALF_LIFE = 30.0
SAMPLE_SATURATION = 8.0


def age_confidence(age: float, half_life: float = DEFAULT_HALF_LIFE) -> float:
    """Confidence in [0, 1] for information ``age`` seconds old.

    Decays by half every ``half_life`` seconds; fresh information has
    confidence 1.  Negative ages (clock skew) are clamped to fresh.
    """
    if half_life <= 0:
        raise ValueError(f"half_life must be positive, got {half_life!r}")
    if age <= 0:
        return 1.0
    return math.pow(0.5, age / half_life)


def sample_confidence(samples: int, saturation: float = SAMPLE_SATURATION) -> float:
    """Confidence in [0, 1) growing with the number of observations.

    One sample gives modest confidence; ``saturation`` samples give
    ~63%; confidence approaches 1 asymptotically.
    """
    if samples <= 0:
        return 0.0
    return 1.0 - math.exp(-samples / saturation)


def combined_confidence(
    age: float,
    samples: int,
    half_life: float = DEFAULT_HALF_LIFE,
    saturation: float = SAMPLE_SATURATION,
) -> float:
    """Product of age and sample confidence."""
    return age_confidence(age, half_life) * sample_confidence(samples, saturation)


__all__ = [
    "age_confidence",
    "sample_confidence",
    "combined_confidence",
    "DEFAULT_HALF_LIFE",
    "SAMPLE_SATURATION",
]
