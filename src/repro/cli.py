"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli e1
    python -m repro.cli e2 --variant choice-crystalball --seed 2
    python -m repro.cli e3 --seeds 1 2 3
    python -m repro.cli e4 --variant choice-model
    python -m repro.cli e5 --setting abundant --variant baseline-rarest
    python -m repro.cli e6 --variant mencius
    python -m repro.cli trace e6 --explain
    python -m repro.cli trace a7 --explain --format markdown \\
        --json TRACE_EXPLAIN.json --markdown TRACE_EXPLAIN.md
    python -m repro.cli bench p1 --quick
    python -m repro.cli bench p2 --quick
    python -m repro.cli bench s1 --quick
    python -m repro.cli report e2 --variant choice-crystalball --seed 1 \\
        --json RUN_REPORT.json --markdown RUN_REPORT.md
    python -m repro.cli fuzz paxos --seed 1 --budget 2000 --steering off \\
        --out examples/corpus
    python -m repro.cli fuzz --replay examples/corpus
    python -m repro.cli t1 --quick --stream RUN_STREAM.jsonl
    python -m repro.cli tail RUN_STREAM.jsonl --follow
    python -m repro.cli top RUN_STREAM.jsonl

Each experiment id matches DESIGN.md's index and the corresponding
``benchmarks/bench_e*.py``; the CLI is the quick interactive way to
poke at one configuration.  ``bench <id>`` runs a full benchmark suite
under pytest and prints where its machine-readable ``BENCH_<ID>.json``
landed.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import List, Optional

EXPERIMENTS = {
    "e1": "development-effort metrics (LoC, if-else per handler)",
    "e2": "RandTree join-phase depth (31 nodes)",
    "e3": "RandTree subtree failure + rejoin depth",
    "e4": "gossip peer choice on heterogeneous links",
    "e5": "content-distribution next-block strategy crossover",
    "e6": "Paxos proposer choice over a loaded WAN",
    "e7": "consequence-prediction depth/cost sweep",
    "a7": "safety under chaos (RandTree invariants, Paxos agreement)",
}


def _cmd_list(_args) -> int:
    for exp_id, description in EXPERIMENTS.items():
        print(f"{exp_id}  {description}")
    return 0


def _cmd_e1(_args) -> int:
    from .metrics import compare_randtree

    print(compare_randtree().format_table())
    return 0


def _cmd_tree(args, phase: str) -> int:
    from .eval import VARIANTS, run_tree_experiment

    variants = [args.variant] if args.variant else list(VARIANTS)
    for variant in variants:
        depths = []
        for seed in args.seeds:
            result = run_tree_experiment(variant, seed=seed)
            depths.append(
                result.depth_after_join if phase == "join" else result.depth_after_rejoin
            )
        print(f"{variant:>20}: depth after {phase} = "
              f"{statistics.mean(depths):.2f}  per-seed {depths}")
    return 0


def _cmd_e4(args) -> int:
    from .eval import GOSSIP_VARIANTS, run_gossip_experiment

    variants = [args.variant] if args.variant else list(GOSSIP_VARIANTS)
    for variant in variants:
        for seed in args.seeds:
            print(run_gossip_experiment(variant, seed=seed).summary())
    return 0


def _cmd_e5(args) -> int:
    from .eval import SWARM_VARIANTS, run_swarm_experiment

    variants = [args.variant] if args.variant else list(SWARM_VARIANTS)
    for variant in variants:
        for seed in args.seeds:
            print(run_swarm_experiment(variant, setting=args.setting, seed=seed).summary())
    return 0


def _cmd_e6(args) -> int:
    from .eval import PAXOS_VARIANTS, run_paxos_experiment

    variants = [args.variant] if args.variant else list(PAXOS_VARIANTS)
    for variant in variants:
        for seed in args.seeds:
            print(run_paxos_experiment(variant, seed=seed).summary())
    return 0


def _cmd_e7(args) -> int:
    import time

    from .apps.randtree import RandTreeConfig, make_exposed_factory, randtree_properties
    from .choice.resolvers import RandomResolver
    from .mc import ConsequencePredictor, Explorer, world_from_services
    from .statemachine import Cluster

    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(31, factory, seed=args.seeds[0],
                      resolver_factory=lambda nid: RandomResolver(args.seeds[0]))
    cluster.start_all()
    cluster.run(until=20.0)
    world = world_from_services(cluster.services, cluster.nodes, time=cluster.sim.now)
    explorer = Explorer(factory, properties=randtree_properties(config))
    for depth in range(1, args.max_depth + 1):
        predictor = ConsequencePredictor(explorer, chain_depth=depth, budget=50_000)
        start = time.perf_counter()
        report = predictor.predict(world)
        elapsed = time.perf_counter() - start
        print(f"chain depth {depth}: {report.total_states:5d} states  {elapsed:.3f}s")
    return 0


def _cmd_bench(args) -> int:
    import json
    import os
    import subprocess
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    bench_id = args.id.lower()
    modules = sorted(repo_root.glob(f"benchmarks/bench_{bench_id}*.py"))
    if not modules:
        print(f"no benchmark module matches benchmarks/bench_{bench_id}*.py",
              file=sys.stderr)
        return 2
    baseline = None
    if args.compare:
        # Read the baseline up front: comparing against a copy of the
        # very file this run is about to overwrite must see the *old*
        # numbers, and a missing baseline should fail before the run.
        try:
            with open(args.compare, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except OSError as err:
            print(f"cannot read baseline {args.compare}: {err}", file=sys.stderr)
            return 2
    env = dict(os.environ)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if args.quick:
        env["REPRO_BENCH_QUICK"] = "1"
    command = [sys.executable, "-m", "pytest", "-q", "-s",
               *(str(m) for m in modules)]
    status = subprocess.run(command, cwd=repo_root, env=env).returncode
    json_path = repo_root / f"BENCH_{bench_id.upper()}.json"
    if json_path.exists():
        print(f"results: {json_path}")
    if baseline is not None:
        from .metrics import compare_bench

        if not json_path.exists():
            print(f"--compare: no {json_path.name} produced to compare",
                  file=sys.stderr)
            return status or 1
        with open(json_path, "r", encoding="utf-8") as fh:
            current = json.load(fh)
        comparison = compare_bench(baseline, current, tolerance=args.tolerance)
        print(comparison.summary())
        if not comparison.ok:
            return status or 1
    return status


REPORTABLE = ("e2", "e3", "e4", "e5", "e6", "a7")


def _report_result(experiment: str, args):
    """Run one experiment configuration and return its result object."""
    if experiment in ("e2", "e3"):
        from .eval import run_tree_experiment

        variant = args.variant or "choice-crystalball"
        return variant, run_tree_experiment(variant, seed=args.seed)
    if experiment == "e4":
        from .eval import run_gossip_experiment

        variant = args.variant or "choice-model"
        return variant, run_gossip_experiment(variant, seed=args.seed)
    if experiment == "e5":
        from .eval import run_swarm_experiment

        variant = args.variant or "choice-adaptive"
        return variant, run_swarm_experiment(variant, seed=args.seed)
    if experiment == "e6":
        from .eval import run_paxos_experiment

        variant = args.variant or "choice"
        return variant, run_paxos_experiment(variant, seed=args.seed)
    if experiment == "a7":
        from .eval import run_chaos_tree_experiment

        variant = args.variant or "baseline"
        return variant, run_chaos_tree_experiment(variant, seed=args.seed)
    raise ValueError(f"unreportable experiment {experiment!r}")


def _near_violation_totals(metrics) -> dict:
    """Aggregate per-node predicted near-violation counts for a report."""
    totals: dict = {}
    for section in metrics.get("nodes", {}).values():
        prediction = section.get("prediction") or {}
        for prop, count in (prediction.get("near_violations") or {}).items():
            totals[prop] = totals.get(prop, 0) + count
    return totals


def _steering_policy_totals(metrics) -> dict:
    """Aggregate per-node amortized-steering snapshots for a report."""
    from .runtime import merge_steering_snapshots

    snapshots = [
        section["steering"]["amortized"]
        for section in metrics.get("nodes", {}).values()
        if section.get("steering", {}).get("amortized")
    ]
    # A cluster-level steering section (T1/T2 experiment results carry
    # one pre-merged) wins over re-deriving it from nodes.
    if metrics.get("steering"):
        return metrics["steering"]
    if not snapshots:
        return {}
    return merge_steering_snapshots(snapshots)


def _cmd_report(args) -> int:
    from .obs import RunReport

    variant, result = _report_result(args.experiment, args)
    context = {
        "experiment": args.experiment,
        "variant": variant,
        "seed": args.seed,
        "summary": result.summary(),
    }
    near = _near_violation_totals(result.metrics)
    if near:
        context["near_violations"] = near
        print(f"near-violations predicted: {near}")
    steering = _steering_policy_totals(result.metrics)
    if steering:
        context["steering"] = steering
        counters = steering.get("counters", {})
        policy = steering.get("policy", {})
        print(
            "amortized steering: "
            f"{counters.get('scored_rounds', 0)} scored rounds, "
            f"{counters.get('policy_hits', 0)} policy hits "
            f"(hit rate {policy.get('hit_rate', 0.0):.0%}), "
            f"{counters.get('coalesced', 0)} coalesced, "
            f"{counters.get('fallbacks', 0)} fallbacks"
        )
    report = RunReport(
        title=f"{args.experiment}/{variant}",
        metrics=result.metrics,
        context=context,
    )
    report.write(json_path=args.json, markdown_path=args.markdown)
    if args.json:
        print(f"wrote {args.json}")
    if args.markdown:
        print(f"wrote {args.markdown}")
    if not args.json and not args.markdown:
        print(report.to_markdown(), end="")
    return 0


def _cmd_a7(args) -> int:
    from .eval import (
        CHAOS_TREE_VARIANTS,
        run_chaos_paxos_experiment,
        run_chaos_tree_experiment,
        standard_plans,
    )

    variants = [args.variant] if args.variant else list(CHAOS_TREE_VARIANTS)
    plans = standard_plans(args.nodes, args.horizon)
    if args.plan:
        known = {p.name: p for p in plans}
        if args.plan not in known:
            print(f"unknown plan {args.plan!r}; expected one of: "
                  f"{', '.join(known)}", file=sys.stderr)
            return 2
        plans = [known[args.plan]]
    for variant in variants:
        for plan in plans:
            for seed in args.seeds:
                result = run_chaos_tree_experiment(
                    variant, seed=seed, n=args.nodes, plan=plan)
                print(result.summary())
    if args.paxos:
        for plan in standard_plans(5, 20.0, amnesia=False):
            for seed in args.seeds:
                print(run_chaos_paxos_experiment(seed=seed, plan=plan).summary())
    return 0


def _cmd_fuzz(args) -> int:
    import json as _json
    import os

    from .fuzz import (
        FuzzCampaign,
        corpus_paths,
        counterexample_dict,
        forensics_for,
        load_counterexample,
        make_target,
        replay_counterexample,
        shrink_counterexample,
        write_counterexample,
    )

    if args.replay:
        paths = corpus_paths(args.replay) if os.path.isdir(args.replay) \
            else [args.replay]
        if not paths:
            print(f"no artifacts under {args.replay}", file=sys.stderr)
            return 2
        failures = 0
        for path in paths:
            artifact = load_counterexample(path)
            _execution, reproduces = replay_counterexample(artifact)
            status = "REPRODUCES" if reproduces else "DOES NOT REPRODUCE"
            print(f"{path}: {status}  ({artifact['target']} "
                  f"seed={artifact['seed']}, {artifact['shrunk_events']} events)")
            failures += 0 if reproduces else 1
        return 1 if failures else 0

    if not args.app:
        print("fuzz: an app is required unless --replay is given",
              file=sys.stderr)
        return 2
    app = args.app
    if getattr(args, "batched", False):
        if app != "paxos":
            print("fuzz: --batched only applies to the paxos target",
                  file=sys.stderr)
            return 2
        app = "paxos-batched"
    target = make_target(app)
    campaign = FuzzCampaign(
        target, seed=args.seed, budget=args.budget, mode=args.mode,
        steering=args.steering == "on", stop_after=args.stop_after,
        stream=args.stream, progress_every=args.progress_every,
    )
    result = campaign.run()
    print(_json.dumps(result.summary(), sort_keys=True))
    for ce in result.counterexamples:
        print(f"violation: {ce.summary()}")
    if not result.counterexamples:
        print("no safety violations found within the budget")
        return 0

    ce = result.counterexamples[0]
    if args.shrink:
        shrink = shrink_counterexample(target, ce.plan, ce.seed)
        print(f"shrink: {shrink.summary()}")
        print("minimal plan:")
        for line in shrink.shrunk.to_text().splitlines():
            print(f"  {line}")
        plan, violations, horizon = shrink.shrunk, shrink.violations, shrink.horizon
    else:
        plan, violations, horizon = ce.plan, ce.violations, None
    explanation = None
    if args.forensics:
        explanation = forensics_for(target, plan, ce.seed)
        if explanation is not None:
            print()
            print(explanation.to_ascii(), end="")
    if args.out:
        final = target.execute(plan, ce.seed, probes=False)
        artifact = counterexample_dict(
            target, plan, ce.seed, violations,
            campaign_seed=args.seed, execution=ce.execution,
            original_events=len(ce.plan), horizon=horizon,
            trace_digest=final.trace_digest, explanation=explanation,
        )
        path = write_counterexample(
            os.path.join(args.out, f"{target.name}-seed{args.seed}.json"),
            artifact,
        )
        print(f"wrote {path}")
    return 0


def _format_record(record: dict) -> str:
    """One human-readable line per stream record."""
    rtype = record.get("type")
    t = record.get("t", 0.0)
    if rtype == "header":
        config = " ".join(f"{k}={v}" for k, v in
                          sorted((record.get("config") or {}).items()))
        return (f"# {record.get('kind')} run {record.get('run')} "
                f"(stream v{record.get('version')})  {config}".rstrip())
    if rtype == "sample":
        values = " ".join(f"{k}={_short_num(v)}" for k, v in
                          sorted((record.get("v") or {}).items()))
        return f"[{t:10.2f}s] {values}"
    if rtype == "event":
        data = " ".join(f"{k}={v}" for k, v in
                        sorted((record.get("data") or {}).items()))
        return f"[{t:10.2f}s] event {record.get('event')}  {data}".rstrip()
    data = " ".join(f"{k}={v}" for k, v in
                    sorted((record.get("data") or {}).items()))
    return f"== summary [{t:.2f}s] {data}".rstrip()


def _short_num(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _cmd_tail(args) -> int:
    import json as _json
    import os

    from .obs.stream import follow_stream, read_stream

    if not args.follow and not os.path.exists(args.path):
        print(f"no stream at {args.path}", file=sys.stderr)
        return 2
    if args.follow:
        records = follow_stream(args.path, timeout=args.timeout)
    else:
        records = iter(read_stream(args.path))
    count = 0
    for record in records:
        if args.json:
            print(_json.dumps(record, sort_keys=True), flush=True)
        else:
            print(_format_record(record), flush=True)
        count += 1
    if count == 0:
        print("stream is empty", file=sys.stderr)
        return 1
    return 0


SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(points, width: int = 40) -> str:
    """Fixed-width unicode sparkline over (t, value) points."""
    values = [v for _, v in points]
    if len(values) > width:
        # Downsample evenly to the display width.
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - lo) / span * len(SPARK_CHARS)))]
        for v in values
    )


def _cmd_top(args) -> int:
    import os

    from .obs.stream import read_stream, stream_series

    if not os.path.exists(args.path):
        print(f"no stream at {args.path}", file=sys.stderr)
        return 2
    records = read_stream(args.path)
    if not records:
        print("stream is empty", file=sys.stderr)
        return 1
    header = records[0] if records[0].get("type") == "header" else {}
    series = stream_series(records)
    events = [r for r in records if r.get("type") == "event"]
    summary = next((r for r in records if r.get("type") == "summary"), None)
    samples = sum(1 for r in records if r.get("type") == "sample")
    status = "finished" if summary is not None else "RUNNING"
    last_t = records[-1].get("t", 0.0)

    print(f"run {header.get('run', '?')}  kind={header.get('kind', '?')}  "
          f"{status}  t={last_t:.2f}s  samples={samples}  events={len(events)}")
    config = header.get("config") or {}
    if config:
        print("  " + " ".join(f"{k}={v}" for k, v in sorted(config.items())))
    print()
    width = max((len(name) for name in series), default=0)
    for name in sorted(series):
        points = series[name]
        last = points[-1][1]
        print(f"{name:<{width}}  {_sparkline(points)}  {_short_num(last)}")
    if events:
        print()
        print("recent events:")
        for record in events[-args.events:]:
            print(f"  {_format_record(record)}")
    if summary is not None:
        print()
        print(_format_record(summary))
    return 0


def _cmd_t1(args) -> int:
    from .eval import run_throughput_experiment

    total = 4_000 if args.quick else args.requests
    horizon = 15.0 if args.quick else args.horizon
    mode = {"on": "static"}.get(args.steering, args.steering)
    result = run_throughput_experiment(
        steering=mode,
        seed=args.seed,
        total_requests=total,
        horizon=horizon,
        stream=args.stream,
        telemetry_cadence=args.cadence,
    )
    print(result.summary())
    print(f"digest: {result.state_digest}")
    steering = result.metrics.get("steering")
    if steering:
        counters = steering["counters"]
        print(
            f"steering: {counters.get('scored_rounds', 0)} scored rounds / "
            f"{sum(counters.values())} resolutions, policy hit rate "
            f"{steering['policy'].get('hit_rate', 0.0):.0%}"
        )
    if args.stream:
        print(f"stream: {args.stream}")
    return 0 if result.safe else 1


def _render_explanation(explanation, fmt: str) -> str:
    if fmt == "json":
        return explanation.to_json() + "\n"
    if fmt == "markdown":
        return explanation.to_markdown()
    return explanation.to_ascii()


def _cmd_trace(args) -> int:
    from .eval import run_trace_session

    session = run_trace_session(
        args.experiment, seed=args.seed, keep_cluster=bool(args.jsonl),
    )
    print(session.summary())
    if session.prediction:
        import json as _json
        print(f"prediction: {_json.dumps(session.prediction, sort_keys=True)}")
    explanations = session.steering + session.violations
    if args.explain:
        if not explanations:
            print("nothing to explain: no steering decisions and no "
                  "predicted violations")
        for explanation in explanations:
            print()
            print(_render_explanation(explanation, args.format), end="")
    best = session.best_explanation()
    if args.json and best is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(best.to_json() + "\n")
        print(f"wrote {args.json}")
    if args.markdown and explanations:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(f"# Causal forensics: {args.experiment} "
                     f"(seed {args.seed})\n\n{session.summary()}\n\n")
            for explanation in explanations:
                fh.write(explanation.to_markdown() + "\n")
        print(f"wrote {args.markdown}")
    if args.jsonl and session.cluster is not None:
        written = session.cluster.sim.trace.dump_jsonl(args.jsonl)
        print(f"wrote {args.jsonl} ({written} records)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run experiments from 'Simplifying Distributed System Development'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("e1", help=EXPERIMENTS["e1"])

    def add_common(p, variants_help="restrict to one variant"):
        p.add_argument("--variant", default=None, help=variants_help)
        p.add_argument("--seeds", type=int, nargs="+", default=[1],
                       help="seeds to run (default: 1)")

    for exp_id in ("e2", "e3"):
        p = sub.add_parser(exp_id, help=EXPERIMENTS[exp_id])
        add_common(p)
    p = sub.add_parser("e4", help=EXPERIMENTS["e4"])
    add_common(p)
    p = sub.add_parser("e5", help=EXPERIMENTS["e5"])
    add_common(p)
    p.add_argument("--setting", choices=("scarce", "abundant"), default="scarce")
    p = sub.add_parser("e6", help=EXPERIMENTS["e6"])
    add_common(p)
    p = sub.add_parser("e7", help=EXPERIMENTS["e7"])
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    p.add_argument("--max-depth", type=int, default=6)
    p = sub.add_parser(
        "bench",
        help="run one benchmark suite and report its BENCH_<ID>.json path",
    )
    p.add_argument("id", help="bench id, e.g. e7, p1, or s1 (matches "
                              "benchmarks/bench_<id>*.py)")
    p.add_argument("--quick", action="store_true",
                   help="reduced iterations (sets REPRO_BENCH_QUICK=1)")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="after the run, diff BENCH_<ID>.json against this "
                        "baseline and fail on metric regressions beyond "
                        "--tolerance (digests must match exactly)")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative regression tolerance for --compare "
                        "(default: 0.10)")
    p = sub.add_parser(
        "report",
        help="run one experiment and emit its per-node metrics report",
    )
    p.add_argument("experiment", choices=REPORTABLE,
                   help="experiment id to run and report on")
    p.add_argument("--variant", default=None,
                   help="variant (default: the CrystalBall-enabled one)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the JSON report here")
    p.add_argument("--markdown", default=None, metavar="PATH",
                   help="write the Markdown report here")
    p = sub.add_parser(
        "trace",
        help="run a causal-forensics session and explain steering decisions",
    )
    p.add_argument("experiment", choices=("e6", "a7"),
                   help="e6: clean steering forensics; a7: under message chaos")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--explain", action="store_true",
                   help="print the causal explanation of every steering "
                        "decision and predicted violation")
    p.add_argument("--format", choices=("ascii", "markdown", "json"),
                   default="ascii", help="rendering for --explain")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the leading explanation as JSON here")
    p.add_argument("--markdown", default=None, metavar="PATH",
                   help="write all explanations as Markdown here")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="dump the full causally-stamped trace as JSONL here")
    p = sub.add_parser(
        "fuzz",
        help="coverage-guided adversarial scenario search over fault plans",
    )
    p.add_argument("app", nargs="?", choices=("paxos", "randtree"),
                   help="fuzz target (omit with --replay)")
    p.add_argument("--batched", action="store_true",
                   help="with the paxos app: fuzz the batched Multi-Paxos "
                        "replica (ranged prepares, pipelining, at-most-once)")
    p.add_argument("--budget", type=int, default=2000,
                   help="execution budget (default: 2000)")
    p.add_argument("--seed", type=int, default=1,
                   help="campaign seed; same seed, same campaign")
    p.add_argument("--steering", choices=("on", "off"), default="off",
                   help="run executions with CrystalBall steering installed")
    p.add_argument("--mode", choices=("guided", "random"), default="guided",
                   help="guided: coverage + near-violation search; "
                        "random: the plain random baseline")
    p.add_argument("--stop-after", type=int, default=None, metavar="K",
                   help="stop once K counterexamples are found")
    p.add_argument("--no-shrink", dest="shrink", action="store_false",
                   help="skip delta-debug shrinking of the first counterexample")
    p.add_argument("--no-forensics", dest="forensics", action="store_false",
                   help="skip the causal-forensics re-run")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write the counterexample artifact JSON here")
    p.add_argument("--replay", default=None, metavar="PATH",
                   help="replay one artifact file (or every artifact in a "
                        "directory) instead of fuzzing")
    p.add_argument("--stream", default=None, metavar="PATH",
                   help="write live fuzz.progress events to this RunStream "
                        "JSONL file (tail it with `cli tail PATH --follow`)")
    p.add_argument("--progress-every", type=int, default=25, metavar="N",
                   help="emit a fuzz.progress event every N executions "
                        "(default: 25)")
    p = sub.add_parser(
        "t1",
        help="batched Multi-Paxos throughput run (streamable via --stream)",
    )
    p.add_argument("--steering", choices=("on", "off", "static", "amortized"),
                   default="on",
                   help="choice steering: off, static (deployment-model "
                        "resolver; 'on' is an alias), or amortized "
                        "(prediction-driven via distilled policies)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--requests", type=int, default=100_000,
                   help="total offered requests (default: 100000)")
    p.add_argument("--horizon", type=float, default=60.0,
                   help="simulated horizon in seconds (default: 60)")
    p.add_argument("--quick", action="store_true",
                   help="the bench quick workload: 4000 requests, 15 s")
    p.add_argument("--stream", default=None, metavar="PATH",
                   help="write a live RunStream JSONL here while running")
    p.add_argument("--cadence", type=float, default=1.0,
                   help="telemetry sampling cadence in sim seconds")
    p = sub.add_parser(
        "tail",
        help="print a RunStream JSONL file, optionally following it live",
    )
    p.add_argument("path", help="stream file written via an experiment's "
                                "stream= option (or cli t1/fuzz --stream)")
    p.add_argument("--follow", action="store_true",
                   help="keep reading as the writer appends (stops at the "
                        "summary record or --timeout)")
    p.add_argument("--json", action="store_true",
                   help="print raw JSON records instead of formatted lines")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="with --follow: give up after this many host seconds")
    p = sub.add_parser(
        "top",
        help="single-screen view of a run stream: sparklines per series",
    )
    p.add_argument("path", help="stream file to summarize")
    p.add_argument("--events", type=int, default=5,
                   help="how many recent events to show (default: 5)")
    p = sub.add_parser("a7", help=EXPERIMENTS["a7"])
    add_common(p)
    p.add_argument("--nodes", type=int, default=15)
    p.add_argument("--horizon", type=float, default=10.0)
    p.add_argument("--plan", default=None,
                   help="restrict to one standard plan by name")
    p.add_argument("--paxos", action="store_true",
                   help="also run the Paxos agreement sweep")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "e1": _cmd_e1,
        "e2": lambda a: _cmd_tree(a, "join"),
        "e3": lambda a: _cmd_tree(a, "rejoin"),
        "e4": _cmd_e4,
        "e5": _cmd_e5,
        "e6": _cmd_e6,
        "e7": _cmd_e7,
        "a7": _cmd_a7,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "report": _cmd_report,
        "fuzz": _cmd_fuzz,
        "t1": _cmd_t1,
        "tail": _cmd_tail,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
