"""The CrystalBall-enabled runtime (Figure 1).

Checkpoint exchange, predictive model maintenance, consequence
prediction, execution steering via event filters, and predictive
resolution of exposed choices.
"""

from .checkpoints import (
    CheckpointDeltaMsg,
    CheckpointMsg,
    ModelShareMsg,
    ProbeMsg,
    ProbeReplyMsg,
    is_runtime_message,
)
from .controller import CrystalBallRuntime
from .policy import (
    AmortizedSteering,
    SteeringPolicy,
    identity_key,
    merge_steering_snapshots,
    scenario_signature,
)
from .policy_cache import CachedResolver, PolicyCache, scenario_key
from .resolver import PredictiveResolver, install_crystalball
from .steering import EventFilter, SteeringModule

__all__ = [
    "AmortizedSteering",
    "SteeringPolicy",
    "identity_key",
    "merge_steering_snapshots",
    "scenario_signature",
    "CheckpointDeltaMsg",
    "CheckpointMsg",
    "ModelShareMsg",
    "ProbeMsg",
    "ProbeReplyMsg",
    "is_runtime_message",
    "CrystalBallRuntime",
    "CachedResolver",
    "PolicyCache",
    "scenario_key",
    "PredictiveResolver",
    "install_crystalball",
    "EventFilter",
    "SteeringModule",
]
