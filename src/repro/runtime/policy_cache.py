"""Precomputed choice policies: the fast path off the critical path.

Section 3.4: "A useful design decision is removing complex mechanisms
for making the choices from the critical path, using choices based on
previous similar scenarios as a fast alternative, and updating the
choices as more information becomes available."

:class:`PolicyCache` memoizes resolved choices keyed by *scenario* —
the choice label, the deciding service's state digest, and the
candidate set — with an optional TTL so entries refresh as the system
evolves.  :class:`CachedResolver` wraps any resolver (typically the
expensive predictive one) with the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..choice.choicepoint import ChoicePoint, ChoiceResolver
from ..obs import MetricsRegistry
from ..statemachine.serialization import freeze

KeyFn = Callable[[ChoicePoint, Optional[object]], Tuple]


def scenario_key(point: ChoicePoint, node: Optional[object]) -> Tuple:
    """Default scenario identity: (label, local state digest, candidates).

    Two resolutions share a cache entry exactly when the same decision
    site fires with the same local state and the same options — the
    "previous similar scenario" of the paper, made precise.
    """
    state_digest = node.service.state_digest() if node is not None else ""
    return (point.label, state_digest, freeze(list(point.candidates)))


def _key_label(key: Tuple) -> str:
    """A compact stable string rendering of a scenario key.

    Long components (state digests, frozen candidate sets) are
    truncated so per-key counter labels stay readable in reports.
    """
    parts = []
    for part in key if isinstance(key, tuple) else (key,):
        text = str(part)
        parts.append(text if len(text) <= 24 else text[:21] + "...")
    return "|".join(parts)


class PolicyCache:
    """Bounded LRU of resolved choices with optional TTL."""

    def __init__(
        self,
        ttl: Optional[float] = None,
        max_entries: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        max_tracked_keys: int = 128,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries!r}")
        self.ttl = ttl
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, Tuple[Any, float]]" = OrderedDict()
        # Per-scenario-key [hits, misses, stale] tallies, capped at
        # max_tracked_keys distinct keys (first come, first tracked —
        # high-cardinality key functions must not grow this unboundedly;
        # overflow lookups land on the "<other>" bucket).
        self.max_tracked_keys = max_tracked_keys
        self._key_stats: "OrderedDict[str, List[int]]" = OrderedDict()
        self._last_key_label: Optional[str] = None
        # Counters live in the registry (private unless shared in);
        # ``hits``/``misses``/... stay readable and writable attributes.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("policy_cache.hits")
        self._misses = self.metrics.counter("policy_cache.misses")
        self._expirations = self.metrics.counter("policy_cache.expirations")
        self._evictions = self.metrics.counter("policy_cache.evictions")
        self._stale = self.metrics.counter("policy_cache.stale")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def expirations(self) -> int:
        return self._expirations.value

    @expirations.setter
    def expirations(self, value: int) -> None:
        self._expirations.value = value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.value = value

    @property
    def stale(self) -> int:
        return self._stale.value

    @stale.setter
    def stale(self, value: int) -> None:
        self._stale.value = value

    def _key_stat(self, key: Tuple) -> List[int]:
        """The ``[hits, misses, stale]`` tally for one scenario key."""
        label = _key_label(key)
        stat = self._key_stats.get(label)
        if stat is None:
            if len(self._key_stats) >= self.max_tracked_keys:
                label = "<other>"
                stat = self._key_stats.setdefault(label, [0, 0, 0])
            else:
                stat = self._key_stats[label] = [0, 0, 0]
        self._last_key_label = label
        return stat

    def mark_stale(self) -> None:
        """Reclassify the last hit as a stale miss.

        Called by :class:`CachedResolver` when a cached value turned
        out to be unusable (no longer among the candidates): the lookup
        already counted as a hit, but the slow path ran anyway, so
        leaving it a hit would inflate ``hit_rate``.
        """
        self.hits -= 1
        self.misses += 1
        self.stale += 1
        if self._last_key_label is not None:
            stat = self._key_stats[self._last_key_label]
            stat[0] -= 1
            stat[1] += 1
            stat[2] += 1

    def get(self, key: Tuple, now: float) -> Optional[Tuple[bool, Any]]:
        """Lookup: returns ``(True, value)`` on a live hit, else ``None``.

        An entry is live while ``stored_at >= now - ttl``: one stored
        at exactly ``now - ttl`` still hits (comparing the timestamps
        directly rather than subtracting twice also avoids the
        floating-point drift of ``now - stored_at > ttl``).
        """
        stat = self._key_stat(key)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            stat[1] += 1
            return None
        value, stored_at = entry
        if self.ttl is not None and stored_at < now - self.ttl:
            # Expired: a plain delete — dead entries get no LRU
            # bookkeeping (no move_to_end before removal).
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            stat[1] += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        stat[0] += 1
        return (True, value)

    def put(self, key: Tuple, value: Any, now: float) -> None:
        """Store a resolved value, evicting the LRU entry if full."""
        self._entries[key] = (value, now)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop everything (e.g. after a topology change)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-scenario-key lookup tallies (bounded at max_tracked_keys)."""
        return {
            label: {"hits": s[0], "misses": s[1], "stale": s[2]}
            for label, s in self._key_stats.items()
        }

    def snapshot(self) -> Dict[str, Any]:
        """Observability snapshot of configuration and counters."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "ttl": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "stale": self.stale,
            "keys": self.key_stats(),
        }


class CachedResolver(ChoiceResolver):
    """Wraps a (slow) resolver with a :class:`PolicyCache` fast path."""

    name = "cached"

    def __init__(
        self,
        inner: ChoiceResolver,
        cache: Optional[PolicyCache] = None,
        key_fn: KeyFn = scenario_key,
    ) -> None:
        self.inner = inner
        self.cache = cache if cache is not None else PolicyCache(ttl=5.0)
        self.key_fn = key_fn

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        now = node.sim.now if node is not None else 0.0
        key = self.key_fn(point, node)
        hit = self.cache.get(key, now)
        if hit is not None:
            value = hit[1]
            if value in point.candidates:
                return value
            # The cached value is no longer an option; reclassify the
            # hit as a stale miss and fall through to the inner resolver.
            self.cache.mark_stale()
        value = self.inner.resolve(point, node)
        self.cache.put(key, value, now)
        return value

    def stats(self) -> Dict[str, Any]:
        """The wrapped cache's :meth:`PolicyCache.snapshot`."""
        return self.cache.snapshot()


__all__ = ["PolicyCache", "CachedResolver", "scenario_key"]
