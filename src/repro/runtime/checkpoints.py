"""Checkpoint and measurement exchange messages.

The CrystalBall controller "periodically collects a consistent set of
checkpoints from each of the node's neighbors" (Section 2).  In this
reproduction each runtime instance broadcasts epoch-stamped checkpoints
of its service state to its neighborhood; receiving runtimes consume
them (they never reach the application) and fold them into their state
models.  Checkpoint and probe messages double as passive latency
measurements via their ``sent_at`` stamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..statemachine import Message


def deep_size(value: Any) -> int:
    """Recursive wire-size estimate of a plain-data value in bytes."""
    if isinstance(value, (str, bytes)):
        return len(value) + 4
    if isinstance(value, dict):
        return 8 + sum(deep_size(k) + deep_size(v) for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(deep_size(v) for v in value)
    return 8


@dataclass
class CheckpointMsg(Message):
    """One node's epoch-stamped service checkpoint.

    ``timers`` lists the sender's pending timers as ``(name, delay,
    payload)`` tuples — in Mace, timer state is part of a service's
    checkpoint, and consequence prediction needs neighbors' timers to
    see the actions they may take next.
    """

    sender: int
    epoch: int
    taken_at: float
    sent_at: float
    state: Dict[str, Any] = field(default_factory=dict)
    timers: list = field(default_factory=list)
    # Delta mode: the receiver should adopt this full checkpoint as its
    # delta baseline and acknowledge it (see CheckpointAckMsg).
    ack_requested: bool = False

    def wire_size(self) -> int:
        return 64 + deep_size(self.state) + deep_size(self.timers)


@dataclass
class CheckpointDeltaMsg(Message):
    """Only the state fields that changed since ``base_epoch``.

    Section 3.3.2: "the acceptable amount of communication overhead
    limits the rate at which information can be exchanged" — delta
    encoding lets checkpoints flow at a higher rate for the same
    bandwidth.  A receiver that does not hold the sender's
    ``base_epoch`` ignores the delta and resynchronizes at the next
    full checkpoint.
    """

    sender: int
    epoch: int
    base_epoch: int
    taken_at: float
    sent_at: float
    changed: Dict[str, Any] = field(default_factory=dict)
    timers: list = field(default_factory=list)

    def wire_size(self) -> int:
        return 72 + deep_size(self.changed) + deep_size(self.timers)


@dataclass
class CheckpointAckMsg(Message):
    """Acknowledges adoption of a full checkpoint as a delta baseline.

    Delta checkpoints are diffed against the sender's last *acked*
    full checkpoint, so a sender never diffs against state a receiver
    provably lacks: until the ack for the current baseline arrives,
    that receiver keeps getting fulls (the resync fallback).
    """

    sender: int
    epoch: int

    def wire_size(self) -> int:
        return 64


@dataclass
class ModelShareMsg(Message):
    """A slice of a node's network model, shared iPlane-style.

    "iPlane proposes to build an information plane which makes the
    network measurements and predictions available to all applications"
    (Section 3.3.1); runtimes periodically exchange their estimates so
    each node's model covers pairs it never measured itself.  Entries
    are ``(src, dst, latency, bandwidth, loss, updated_at, samples)``.
    """

    sender: int
    entries: list = field(default_factory=list)

    def wire_size(self) -> int:
        return 64 + 48 * max(1, len(self.entries))


@dataclass
class ProbeMsg(Message):
    """Active network probe (RTT measurement request)."""

    sender: int
    sent_at: float


@dataclass
class ProbeReplyMsg(Message):
    """Reply to a :class:`ProbeMsg`, echoing the original send time."""

    sender: int
    orig_sent_at: float


RUNTIME_MESSAGE_TYPES = (
    CheckpointMsg, CheckpointDeltaMsg, CheckpointAckMsg, ModelShareMsg,
    ProbeMsg, ProbeReplyMsg,
)


def is_runtime_message(msg: Any) -> bool:
    """Whether ``msg`` belongs to the runtime (never shown to services)."""
    return isinstance(msg, RUNTIME_MESSAGE_TYPES)


__all__ = [
    "CheckpointMsg",
    "CheckpointDeltaMsg",
    "CheckpointAckMsg",
    "ModelShareMsg",
    "ProbeMsg",
    "ProbeReplyMsg",
    "RUNTIME_MESSAGE_TYPES",
    "is_runtime_message",
]
