"""Amortized prediction-driven steering: one prediction round, many choices.

ROADMAP item 2 left explicit headroom: at T1's event rate (10^5 offered
requests) running full consequence prediction per exposed choice is far
too slow, so the batched Paxos workload steered off a *static*
deployment-model resolver.  This module closes that gap with three
cooperating mechanisms:

* :class:`SteeringPolicy` — the distilled artifact of a prediction
  round: per choice-point-kind candidate *rankings* keyed by a coarse
  :func:`scenario_signature` (queue-depth bucket, conflict-signal
  bucket, liveness fingerprint).  Stored in a
  :class:`~repro.runtime.policy_cache.PolicyCache`, so entries age out
  after ``max_age`` and per-scenario-key hit/miss/stale counters come
  for free.
* **Choice coalescing** — identical :class:`ChoicePoint`\\ s arriving
  within ``coalesce_window`` sim-seconds share one resolution (one
  score pass, N answers), deduplicated by :func:`identity_key`.
* :class:`AmortizedSteering` — the scheduler gluing both to the hot
  path: answer from the coalescing cache, then from the policy, and
  only when both miss (and the deterministic prediction budget allows
  it) run one scored prediction round whose ranking is installed for
  every later choice in the same scenario.  A policy older than
  ``max_age``, or invalidated by steering installs / liveness flips /
  topology changes, degrades gracefully to the static fallback
  resolver — it never answers stale-silently and never blocks the hot
  path.

The prediction budget is deliberately expressed in *predicted states
per simulated second*, not wall time: a wall-clock duty cycle would
make resolutions depend on host speed and break same-seed digest
identity.  Wall duty cycle is still measured (the runtime's
``runtime.choice_score`` span) and reported by the T2 bench — the
states-rate budget is the deterministic proxy that keeps it low.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..choice.choicepoint import ChoicePoint, ConfigurationError
from ..statemachine.serialization import freeze
from .policy_cache import PolicyCache

#: A ranking is the distilled output of one scored prediction round:
#: candidates with their predicted-objective scores, best first.
Ranking = Tuple[Tuple[Any, float], ...]

#: Scores one choice point by prediction.  Returns ``(ranking,
#: states_explored)`` or ``None`` when scoring is impossible right now
#: (typically: the current dispatch was not captured for replay).
ScoreFn = Callable[[ChoicePoint, Optional[object]], Optional[Tuple[Ranking, int]]]


def identity_key(point: ChoicePoint) -> Tuple:
    """Exact identity of a choice point (the coalescing dedup key).

    Two points share a coalesced resolution only when label, candidates,
    and every application hint match — the same memoized-action-key
    discipline the chain memo uses for deliveries.
    """
    return (
        point.label,
        freeze(list(point.candidates)),
        freeze(sorted(point.info.items())),
    )


def _bucket(value: Any) -> int:
    """Logarithmic bucket of a non-negative magnitude (0, 1, 2, 4, ...)."""
    return int(max(float(value), 0.0)).bit_length()


def _liveness_fingerprint(node: Optional[object]) -> Tuple[int, ...]:
    """The sorted tuple of currently-down node ids, as this node sees it."""
    network = getattr(node, "network", None)
    liveness = getattr(network, "liveness", None)
    if liveness is None:
        return ()
    return tuple(sorted(liveness.down_nodes))


def scenario_signature(point: ChoicePoint, node: Optional[object] = None) -> Tuple:
    """Coarse scenario identity for policy entries.

    Deliberately much coarser than
    :func:`~repro.runtime.policy_cache.scenario_key` (which includes
    the full state digest): queue depth is bucketed logarithmically,
    the conflict signal is clamped to small integers, and the liveness
    fingerprint captures which peers are down.  One prediction round's
    ranking then serves every choice the scenario produces until it
    ages out.
    """
    parts: List[Any] = [point.label, freeze(list(point.candidates))]
    info = point.info
    if "queue" in info:
        parts.append(("queue", _bucket(info["queue"])))
    if "conflicts" in info:
        parts.append(("conflicts", min(int(float(info["conflicts"])), 4)))
    if "inflight" in info:
        parts.append(("inflight", _bucket(info["inflight"])))
    parts.append(("down", _liveness_fingerprint(node)))
    return tuple(parts)


class SteeringPolicy:
    """Per-scenario candidate rankings distilled from prediction rounds.

    Entries live in a :class:`PolicyCache` with ``ttl=max_age``, so
    staleness is enforced on lookup (an entry installed at ``t`` stops
    answering after ``t + max_age``) and per-scenario-key counters are
    exposed through :meth:`snapshot`.  :meth:`invalidate` drops
    everything at once — the hook for steering installs, liveness
    flips, and topology changes, whose effects a signature cannot see.
    """

    def __init__(self, max_age: float = 5.0, max_entries: int = 512) -> None:
        if max_age is not None and max_age <= 0:
            raise ConfigurationError(
                f"SteeringPolicy max_age must be positive, got {max_age!r}"
            )
        self.max_age = max_age
        self.cache = PolicyCache(ttl=max_age, max_entries=max_entries)
        self.refreshed_at = float("-inf")
        self.installs = 0
        self.invalidations: Dict[str, int] = {}

    def fresh(self, now: float) -> bool:
        """Whether *any* prediction round refreshed us within max_age."""
        if self.max_age is None:
            return self.refreshed_at > float("-inf")
        return now - self.refreshed_at <= self.max_age

    def install(self, signature: Tuple, ranking: Iterable[Tuple[Any, float]],
                now: float) -> None:
        """Distill one scored round into a policy entry."""
        self.cache.put(signature, tuple(ranking), now)
        self.installs += 1
        if now > self.refreshed_at:
            self.refreshed_at = now

    def ranking(self, signature: Tuple, now: float) -> Optional[Ranking]:
        """The live ranking for a scenario, or None (missing/aged out)."""
        hit = self.cache.get(signature, now)
        return hit[1] if hit is not None else None

    def lookup(self, signature: Tuple, point: ChoicePoint, now: float) -> Optional[Any]:
        """Best ranked candidate still offered by ``point``, or None.

        A live entry none of whose candidates are currently offered is
        reclassified as a stale miss (the cache's per-key counters
        record it) and the caller falls through to scoring/fallback.
        """
        ranking = self.ranking(signature, now)
        if ranking is None:
            return None
        for candidate, _score in ranking:
            if candidate in point.candidates:
                return candidate
        self.cache.mark_stale()
        return None

    def invalidate(self, reason: str = "external") -> None:
        """Drop every entry and forget freshness (world changed)."""
        self.cache.invalidate()
        self.refreshed_at = float("-inf")
        self.invalidations[reason] = self.invalidations.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "max_age": self.max_age,
            "installs": self.installs,
            "refreshed_at": (
                None if self.refreshed_at == float("-inf") else self.refreshed_at
            ),
            "invalidations": dict(self.invalidations),
            "cache": self.cache.snapshot(),
        }


class AmortizedSteering:
    """The amortization scheduler: coalesce, consult policy, else score.

    Resolution order for one choice point at sim-time ``now``:

    1. **Coalesce** — an identical point resolved within
       ``coalesce_window`` returns the same answer (no score pass).
    2. **Policy** — a live :class:`SteeringPolicy` entry for the
       point's :func:`scenario_signature` answers from the ranking.
    3. **Score** — if the states-rate budget allows and ``score_fn``
       can run (a captured dispatch is available to replay), one
       prediction round ranks the candidates and installs the ranking
       for the whole scenario.
    4. **Fallback** — otherwise the static resolver answers; when the
       only blocker was a missing dispatch capture, capture is armed so
       an upcoming dispatch carries the checkpoint a scoring round
       needs.

    Every step is a pure function of simulation state, so same-seed
    runs resolve identically (the T2 bench asserts digest identity).
    """

    def __init__(
        self,
        fallback: Any,
        score_fn: Optional[ScoreFn] = None,
        cost_fn: Optional[Any] = None,
        coalesce_window: float = 0.25,
        max_policy_age: float = 5.0,
        rate_budget: Optional[float] = 1200.0,
        initial_allowance: Optional[float] = None,
        policy: Optional[SteeringPolicy] = None,
        coalesce_entries: int = 4096,
    ) -> None:
        if fallback is None or not callable(getattr(fallback, "resolve", None)):
            raise ConfigurationError(
                "amortized steering requires a fallback resolver with a "
                f".resolve(point, node) method, got {fallback!r}; a stale or "
                "invalidated policy must have something to degrade to"
            )
        self.fallback = fallback
        self.score_fn = score_fn
        # Optional admission estimate: projected cost of scoring this
        # point *now* (None = unknown, admit).  Replay cost grows with
        # the decided log, so charging only after the fact would let a
        # single late round blow minutes of wall; denying rounds that
        # no longer fit the remaining allowance keeps scoring
        # concentrated where it is cheap.
        self.cost_fn = cost_fn
        self.coalesce_window = coalesce_window
        self.policy = policy if policy is not None else SteeringPolicy(max_age=max_policy_age)
        self.coalesce = PolicyCache(ttl=coalesce_window, max_entries=coalesce_entries)
        # Prediction budget: at most rate_budget predicted states per
        # simulated second (plus one sim-second's allowance up front so
        # scoring can start at t=0).  None disables the cap.
        self.rate_budget = rate_budget
        self.initial_allowance = (
            initial_allowance if initial_allowance is not None
            else (rate_budget if rate_budget is not None else 0.0)
        )
        self.spent_states = 0
        self.capture_wanted = False
        # Dispatch kinds observed to carry choices: while capture is
        # armed, only these checkpoint (see Node.capture_kinds) — the
        # rest of the event stream stays snapshot-free.
        self.capture_kinds: set = set()
        self.counters: Dict[str, int] = {
            "coalesced": 0,
            "policy_hits": 0,
            "scored_rounds": 0,
            "fallbacks": 0,
            "deferred": 0,
            "denied": 0,
        }

    def allowance(self, now: float) -> float:
        """States the budget permits having spent by simulated ``now``."""
        if self.rate_budget is None:
            return float("inf")
        return self.initial_allowance + self.rate_budget * max(now, 0.0)

    def budget_ok(self, now: float) -> bool:
        """Whether the deterministic states-rate budget allows scoring."""
        return self.spent_states < self.allowance(now)

    def resolve(self, point: ChoicePoint, node: Optional[object] = None,
                now: Optional[float] = None) -> Any:
        return self.resolve_explain(point, node, now=now)[0]

    def resolve_explain(
        self, point: ChoicePoint, node: Optional[object] = None,
        now: Optional[float] = None,
    ) -> Tuple[Any, str]:
        """Resolve and say how: coalesced | policy | scored | fallback."""
        if now is None:
            now = node.sim.now if node is not None else 0.0
        key = identity_key(point)
        hit = self.coalesce.get(key, now)
        if hit is not None:
            self.counters["coalesced"] += 1
            return hit[1], "coalesced"
        signature = scenario_signature(point, node)
        value = self.policy.lookup(signature, point, now)
        if value is not None:
            self.counters["policy_hits"] += 1
            self.coalesce.put(key, value, now)
            return value, "policy"
        if self.score_fn is not None and self.budget_ok(now):
            projected = (
                self.cost_fn(point, node) if self.cost_fn is not None else None
            )
            if projected is not None and \
                    self.spent_states + projected > self.allowance(now):
                # Admission control: this round's replay no longer fits
                # the remaining allowance (the decided log has grown).
                # Disarm capture too — stop snapshotting dispatches for
                # rounds we cannot afford; the fallback answers until
                # the accruing allowance can admit a round again.
                self.counters["denied"] += 1
                self._disarm(node)
            else:
                scored = self.score_fn(point, node)
                if scored is not None:
                    ranking, cost = scored
                    self.spent_states += max(int(cost), 0)
                    self.counters["scored_rounds"] += 1
                    self.policy.install(signature, ranking, now)
                    self._disarm(node)
                    value = self.policy.lookup(signature, point, now)
                    if value is not None:
                        self.coalesce.put(key, value, now)
                        return value, "scored"
                else:
                    # Scoring wanted but impossible (no captured
                    # dispatch): arm capture so an upcoming dispatch
                    # checkpoints its pre-state and the next miss in
                    # this scenario scores.
                    self.counters["deferred"] += 1
                    self._arm(node)
        value = self.fallback.resolve(point, node)
        self.counters["fallbacks"] += 1
        self.coalesce.put(key, value, now)
        return value, "fallback"

    def _arm(self, node: Optional[object]) -> None:
        self.capture_wanted = True
        if node is not None:
            # A deferral happens *inside* the choice-bearing dispatch,
            # so its kind is exactly what future captures should cover.
            kind = getattr(node, "current_dispatch_kind", None)
            if kind is not None:
                self.capture_kinds.add(kind)
                node.capture_kinds = self.capture_kinds
            node.capture_dispatch = True

    def _disarm(self, node: Optional[object]) -> None:
        self.capture_wanted = False
        if node is not None:
            node.capture_dispatch = False

    def invalidate(self, reason: str = "external") -> None:
        """World changed: drop policy entries and coalesced answers."""
        self.policy.invalidate(reason)
        self.coalesce.invalidate()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "spent_states": self.spent_states,
            "rate_budget": self.rate_budget,
            "coalesce_window": self.coalesce_window,
            "coalesce": self.coalesce.snapshot(),
            "policy": self.policy.snapshot(),
        }


def merge_steering_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-node :meth:`AmortizedSteering.snapshot` dicts.

    Sums the scheduler counters and the policy/coalesce cache tallies
    (including per-scenario-key counters) so experiment metrics can
    report one cluster-wide ``steering`` section.
    """
    merged: Dict[str, Any] = {
        "counters": {},
        "spent_states": 0,
        "policy": {"installs": 0, "invalidations": {},
                   "hits": 0, "misses": 0, "stale": 0, "keys": {}},
        "coalesce": {"hits": 0, "misses": 0},
    }
    for snap in snapshots:
        for name, count in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + count
        merged["spent_states"] += snap.get("spent_states", 0)
        policy = snap.get("policy", {})
        merged["policy"]["installs"] += policy.get("installs", 0)
        for reason, count in policy.get("invalidations", {}).items():
            inv = merged["policy"]["invalidations"]
            inv[reason] = inv.get(reason, 0) + count
        cache = policy.get("cache", {})
        for field in ("hits", "misses", "stale"):
            merged["policy"][field] += cache.get(field, 0)
        for label, stat in cache.get("keys", {}).items():
            slot = merged["policy"]["keys"].setdefault(
                label, {"hits": 0, "misses": 0, "stale": 0}
            )
            for field in ("hits", "misses", "stale"):
                slot[field] += stat.get(field, 0)
        coalesce = snap.get("coalesce", {})
        for field in ("hits", "misses"):
            merged["coalesce"][field] += coalesce.get(field, 0)
    lookups = merged["policy"]["hits"] + merged["policy"]["misses"]
    merged["policy"]["hit_rate"] = (
        merged["policy"]["hits"] / lookups if lookups else 0.0
    )
    return merged


__all__ = [
    "AmortizedSteering",
    "Ranking",
    "SteeringPolicy",
    "identity_key",
    "merge_steering_snapshots",
    "scenario_signature",
]
