"""The predictive (Choice-CrystalBall) resolver and installation helper.

:class:`PredictiveResolver` routes exposed choices to the node's
CrystalBall runtime, which scores each candidate by sandbox replay +
consequence prediction against the installed objective.  Nodes without
a runtime (or choices made outside a dispatch) fall back to a plain
resolver so services degrade gracefully.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..choice.choicepoint import ChoicePoint, ChoiceResolver
from ..choice.resolvers import FirstResolver
from ..statemachine.node import Cluster, Node
from .controller import CrystalBallRuntime


class PredictiveResolver(ChoiceResolver):
    """Resolve choices with CrystalBall lookahead (fallback otherwise)."""

    name = "crystalball"

    def __init__(self, fallback: Optional[ChoiceResolver] = None) -> None:
        self.fallback = fallback if fallback is not None else FirstResolver()

    def resolve(self, point: ChoicePoint, node: Optional[Node] = None) -> Any:
        runtime = getattr(node, "crystalball", None) if node is not None else None
        if runtime is None or node.current_dispatch is None:
            return self.fallback.resolve(point, node)
        return runtime.resolve_choice(point, node)


def install_crystalball(
    cluster: Cluster,
    service_factory: Callable[[int], Any],
    set_resolver: bool = True,
    start: bool = True,
    **runtime_kwargs: Any,
) -> List[CrystalBallRuntime]:
    """Install a CrystalBall runtime on every node of a cluster.

    ``service_factory`` must build services identical in configuration
    to the live ones (it is used to materialize checkpoints during
    exploration).  With ``set_resolver`` each node's choice resolver
    becomes a :class:`PredictiveResolver`.  Extra keyword arguments are
    passed to every :class:`CrystalBallRuntime`.
    """
    runtimes = []
    for node in cluster.nodes:
        runtime = CrystalBallRuntime(node, service_factory, **runtime_kwargs)
        if set_resolver:
            node.choice_resolver = PredictiveResolver()
        if start:
            runtime.start()
        runtimes.append(runtime)
    return runtimes


__all__ = ["PredictiveResolver", "install_crystalball"]
