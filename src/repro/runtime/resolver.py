"""The predictive (Choice-CrystalBall) resolver and installation helper.

:class:`PredictiveResolver` routes exposed choices to the node's
CrystalBall runtime, which scores each candidate by sandbox replay +
consequence prediction against the installed objective.  Nodes without
a runtime (or choices made outside a dispatch) fall back to a plain
resolver so services degrade gracefully.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..choice.choicepoint import ChoicePoint, ChoiceResolver, ConfigurationError
from ..choice.resolvers import FirstResolver
from ..statemachine.node import Cluster, Node
from .controller import CrystalBallRuntime

# Sentinel distinguishing "use the default fallback" from an explicit
# (and invalid) fallback=None.
_DEFAULT = object()


class PredictiveResolver(ChoiceResolver):
    """Resolve choices with CrystalBall lookahead (fallback otherwise)."""

    name = "crystalball"

    def __init__(self, fallback: Any = _DEFAULT) -> None:
        if fallback is _DEFAULT:
            fallback = FirstResolver()
        # Validate at install time: a missing or non-resolver fallback
        # used to surface only when a runtime-less node hit resolve()
        # mid-run, thousands of dispatches into a campaign.
        if fallback is None or not callable(getattr(fallback, "resolve", None)):
            raise ConfigurationError(
                "PredictiveResolver requires a fallback resolver with a "
                f".resolve(point, node) method, got {fallback!r}; omit the "
                "argument to use FirstResolver"
            )
        self.fallback = fallback

    def resolve(self, point: ChoicePoint, node: Optional[Node] = None) -> Any:
        runtime = getattr(node, "crystalball", None) if node is not None else None
        if runtime is None:
            return self.fallback.resolve(point, node)
        if runtime.amortized is None and node.current_dispatch is None:
            # Per-choice prediction needs a captured dispatch to replay;
            # the amortized scheduler handles dispatch-less choices
            # itself (policy/coalesce/fallback), so it always routes.
            return self.fallback.resolve(point, node)
        return runtime.resolve_choice(point, node)


def install_crystalball(
    cluster: Cluster,
    service_factory: Callable[[int], Any],
    set_resolver: bool = True,
    start: bool = True,
    **runtime_kwargs: Any,
) -> List[CrystalBallRuntime]:
    """Install a CrystalBall runtime on every node of a cluster.

    ``service_factory`` must build services identical in configuration
    to the live ones (it is used to materialize checkpoints during
    exploration).  With ``set_resolver`` each node's choice resolver
    becomes a :class:`PredictiveResolver`.  Extra keyword arguments are
    passed to every :class:`CrystalBallRuntime`.
    """
    runtimes = []
    for node in cluster.nodes:
        runtime = CrystalBallRuntime(node, service_factory, **runtime_kwargs)
        if set_resolver:
            node.choice_resolver = PredictiveResolver()
        if start:
            runtime.start()
        runtimes.append(runtime)
    return runtimes


__all__ = ["PredictiveResolver", "install_crystalball"]
