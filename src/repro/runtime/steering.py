"""Execution steering: event filters.

"If consequence prediction does not find any new inconsistencies due to
execution steering, the controller installs an event filter into the
runtime.  In case of messages, the event filter works by dropping the
offending message and breaking the connection with the message sender"
(Section 2).  :class:`SteeringModule` holds the installed filters; the
runtime consults it on every inbound message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..obs import MetricsRegistry
from ..statemachine.serialization import freeze


@dataclass
class EventFilter:
    """Drop inbound messages matching ``(src, frozen message)``.

    ``match_any_payload`` filters *all* messages of ``msg_type`` from
    ``src`` (a coarser filter used when the predicted-bad message
    carries volatile fields).
    """

    src: int
    msg_key: Optional[Tuple]
    msg_type: Optional[str]
    installed_at: float
    expires_at: float
    reason: str = ""
    # The predicted violation path (action descriptions) that caused
    # this filter: the forensics layer renders it as the predicted
    # continuation of a steering explanation.
    predicted_path: Tuple[str, ...] = ()

    def matches(self, src: int, msg: Any, now: float) -> bool:
        """Whether this live filter matches an inbound message."""
        if now >= self.expires_at or src != self.src:
            return False
        if self.msg_key is not None:
            return freeze(msg) == self.msg_key
        return type(msg).__name__ == self.msg_type


class SteeringModule:
    """Holds and evaluates the node's installed event filters.

    Counters live in a :class:`~repro.obs.MetricsRegistry` (a private
    one by default; pass a shared registry plus ``node`` label to
    aggregate per cluster); ``filtered_count`` stays available as the
    historical attribute.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        node: Optional[int] = None,
    ) -> None:
        self._filters: List[EventFilter] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        labels = {} if node is None else {"node": node}
        self._filtered = self.metrics.counter("steering.filtered", **labels)
        self._installed = self.metrics.counter("steering.installed", **labels)
        self._refreshed = self.metrics.counter("steering.refreshed", **labels)

    @property
    def filtered_count(self) -> int:
        """Messages dropped by a live filter so far."""
        return self._filtered.value

    @filtered_count.setter
    def filtered_count(self, value: int) -> None:
        self._filtered.value = value

    def install(self, event_filter: EventFilter) -> bool:
        """Install one filter (duplicates by (src, key) are refreshed).

        Returns ``True`` when a *new* filter was added, ``False`` when
        an existing filter merely had its TTL refreshed — callers
        counting installations must not count refreshes.
        """
        for existing in self._filters:
            if (existing.src, existing.msg_key, existing.msg_type) == (
                event_filter.src, event_filter.msg_key, event_filter.msg_type,
            ):
                existing.expires_at = max(existing.expires_at, event_filter.expires_at)
                existing.reason = event_filter.reason
                if event_filter.predicted_path:
                    existing.predicted_path = event_filter.predicted_path
                self._refreshed.inc()
                return False
        self._filters.append(event_filter)
        self._installed.inc()
        return True

    def matches(self, src: int, msg: Any, now: float) -> Optional[EventFilter]:
        """The first live filter matching this inbound message, if any."""
        self.prune(now)
        for event_filter in self._filters:
            if event_filter.matches(src, msg, now):
                self._filtered.inc()
                return event_filter
        return None

    def prune(self, now: float) -> None:
        """Drop expired filters."""
        self._filters = [f for f in self._filters if f.expires_at > now]

    @property
    def active_filters(self) -> List[EventFilter]:
        """Currently-installed filters (possibly including expired ones
        not yet pruned)."""
        return list(self._filters)

    def snapshot(self) -> dict:
        """Counters + active-filter count, for metrics sections."""
        return {
            "filtered": self._filtered.value,
            "installed": self._installed.value,
            "refreshed": self._refreshed.value,
            "active_filters": len(self._filters),
        }

    def __len__(self) -> int:
        return len(self._filters)


__all__ = ["EventFilter", "SteeringModule"]
