"""The CrystalBall runtime controller.

One :class:`CrystalBallRuntime` instance interposes on each node
(Figure 1): it periodically checkpoints the local service and gossips
the checkpoint to the neighborhood, folds received checkpoints and
latency measurements into the predictive model, periodically runs
consequence prediction over the assembled snapshot, installs event
filters to steer execution away from predicted violations, and resolves
exposed choices by sandbox replay + lookahead scoring against the
installed objective.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..choice.choicepoint import ChoicePoint
from ..choice.objectives import Objective
from ..mc import (
    ChainMemo,
    ConsequencePredictor,
    DeliverAction,
    Explorer,
    PredictionReport,
    WorldState,
    score_report,
)
from ..model import NetworkModel, StateModel
from ..obs import MetricsRegistry, stats_view
from ..statemachine import ChoiceRequested, InboundInterposer, SandboxContext
from ..statemachine.node import Node
from ..statemachine.serialization import freeze
from .checkpoints import (
    CheckpointAckMsg,
    CheckpointDeltaMsg,
    CheckpointMsg,
    ModelShareMsg,
    ProbeMsg,
    ProbeReplyMsg,
)
from .policy import AmortizedSteering
from .steering import EventFilter, SteeringModule


class _ZeroObjective(Objective):
    """Neutral objective: only safety matters."""

    name = "zero"

    def score(self, world: Any) -> float:
        return 0.0


def _state_weight(values: Iterable[Any]) -> int:
    """Size proxy for a state: top-level container lengths summed."""
    return sum(
        len(value) if isinstance(value, (dict, list, tuple, set, frozenset))
        else 1
        for value in values
    )


class CrystalBallRuntime(InboundInterposer):
    """Per-node CrystalBall controller, model, and steering."""

    def __init__(
        self,
        node: Node,
        service_factory: Callable[[int], Any],
        neighbors_fn: Optional[Callable[[Node], Iterable[int]]] = None,
        properties: Iterable[Any] = (),
        objective: Optional[Objective] = None,
        network_model: Optional[NetworkModel] = None,
        checkpoint_period: float = 1.0,
        prediction_period: float = 0.0,
        chain_depth: int = 3,
        budget: int = 1_500,
        prediction_workers: int = 1,
        filter_ttl: float = 10.0,
        steering_enabled: bool = True,
        max_replay_fills: int = 32,
        score_aggregate: str = "mean",
        passive_measurement: bool = True,
        prediction_mode: str = "chains",
        prediction_scope: str = "global",
        sampling_walks: int = 16,
        sampling_steps: int = 8,
        broadcast_on_change: bool = False,
        min_broadcast_interval: float = 0.05,
        checkpoint_deltas: bool = False,
        full_checkpoint_every: int = 5,
        prediction_memo: bool = True,
        memo_max_entries: int = 256,
        model_share_period: float = 0.0,
        generic_node: Optional[object] = None,
        max_snapshot_age: Optional[float] = None,
        stale_fallback: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        flight_recorder: Optional[Any] = None,
        steering_policy: bool = False,
        policy_fallback: Optional[object] = None,
        coalesce_window: float = 0.25,
        max_policy_age: float = 5.0,
        policy_rate_budget: Optional[float] = 1200.0,
        policy_initial_allowance: Optional[float] = None,
        policy_budget: int = 240,
        policy_memo_entries: int = 128,
    ) -> None:
        self.node = node
        self.service_factory = service_factory
        self.neighbors_fn = neighbors_fn
        self.properties = list(properties)
        self.objective = objective if objective is not None else _ZeroObjective()
        self.network_model = network_model if network_model is not None else NetworkModel()
        self.checkpoint_period = checkpoint_period
        self.prediction_period = prediction_period
        self.chain_depth = chain_depth
        self.budget = budget
        # Fan independent prediction chains over a thread pool (>1);
        # results are byte-identical to serial mode by construction.
        self.prediction_workers = prediction_workers
        self.filter_ttl = filter_ttl
        self.steering_enabled = steering_enabled
        self.max_replay_fills = max_replay_fills
        self.score_aggregate = score_aggregate
        # Passive measurement: fold message timestamps into the network
        # model (disable to freeze the model after bootstrap — the A4
        # ablation of model freshness under changing conditions).
        self.passive_measurement = passive_measurement
        # Prediction backend for choice scoring: "chains" explores the
        # causal consequences exhaustively (bounded); "sampling" runs
        # random-walk simulations instead — "a simulator that runs a
        # large number of simulations" (Section 3.3.2) — cheaper at
        # deep horizons, noisier at shallow ones (ablation A3).
        if prediction_mode not in ("chains", "sampling"):
            raise ValueError(
                f"prediction_mode must be 'chains' or 'sampling', got {prediction_mode!r}"
            )
        self.prediction_mode = prediction_mode
        # Prediction scope: "global" assembles every collected
        # checkpoint into the snapshot world (the paper's mode, fine at
        # tens of nodes); "neighborhood" restricts it to this node plus
        # its current neighbors, which is what keeps a prediction round
        # sub-second at 1,000+ nodes — O(view) sandbox services instead
        # of O(n).  With partial-view membership the two mostly agree
        # anyway (only neighbors send us checkpoints), but the slice
        # also sheds checkpoints lingering from ex-neighbors after
        # shuffles and caps the world when a full-mesh service runs
        # with an explicit neighbors_fn.
        if prediction_scope not in ("global", "neighborhood"):
            raise ValueError(
                f"prediction_scope must be 'global' or 'neighborhood', got {prediction_scope!r}"
            )
        self.prediction_scope = prediction_scope
        self.sampling_walks = sampling_walks
        self.sampling_steps = sampling_steps
        # Checkpoint-on-change (Figure 1's checkpoints accompanying
        # outbound messages): broadcast immediately when local state
        # moves, rate-limited to min_broadcast_interval.
        self.broadcast_on_change = broadcast_on_change
        self.min_broadcast_interval = min_broadcast_interval
        # Delta encoding (Section 3.3.2's communication-overhead limit):
        # deltas are diffed against the last full checkpoint each peer
        # *acknowledged*, with a periodic full as the rotation anchor.
        # A peer whose ack is outstanding keeps receiving fulls (the
        # resync fallback), so a delta is never diffed against state the
        # receiver provably lacks.
        self.checkpoint_deltas = checkpoint_deltas
        self.full_checkpoint_every = max(1, full_checkpoint_every)
        self._delta_baseline_state: Optional[Dict[str, Any]] = None
        self._delta_baseline_frozen: Dict[str, Any] = {}
        self._delta_baseline_epoch = -1
        self._deltas_since_full = 0
        self._peer_acked: Dict[int, int] = {}
        # Cross-round chain memo for run_prediction (not used for
        # hypothetical choice-scoring worlds, which differ per
        # candidate and would only churn the cache).
        self.prediction_memo = prediction_memo
        self._chain_memo: Optional[ChainMemo] = (
            ChainMemo(max_entries=memo_max_entries) if prediction_memo else None
        )
        self.last_prediction_summary: Optional[Dict[str, Any]] = None
        self.model_share_period = model_share_period
        self.generic_node = generic_node
        # Confidence gating (Section 3.3.2): when the snapshot is too
        # stale to trust, fall back to a cheap resolver instead of
        # predicting from fiction.
        self.max_snapshot_age = max_snapshot_age
        self.stale_fallback = stale_fallback
        self._last_state_digest: Optional[str] = None
        self._last_broadcast_at = float("-inf")
        # Reused across prediction passes: the explorer's service pool
        # amortizes factory runs, and the replay service amortizes the
        # per-candidate factory in resolve_choice.
        self._explorer: Optional[Explorer] = None
        self._replay_service: Optional[Any] = None

        # Optional crash-safe telemetry ring (repro.obs.timeseries
        # .FlightRecorder): steering decisions, filter installs, and
        # predicted/live violations are noted with causal stamps, and
        # the ring is dumped on a live violation or a prediction-loop
        # exception.  Pure observation — nothing here feeds back into
        # execution, so digests are unchanged recorder on/off.
        self.flight_recorder = flight_recorder

        self.state_model = StateModel(node.node_id)
        # All counters live in the metrics registry (a private one per
        # runtime unless a shared, per-cluster registry is passed in);
        # ``stats`` remains the historical dict-shaped view over them.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.steering = SteeringModule(metrics=self.metrics, node=node.node_id)
        self.epoch = 0
        self.stats = stats_view(
            self.metrics, "runtime",
            (
                "checkpoints_sent",
                "checkpoints_received",
                "predictions",
                "states_explored",
                "filters_installed",
                "steered_messages",
                "choices_resolved",
                "change_broadcasts",
                "delta_checkpoints_sent",
                "full_checkpoints_sent",
                "checkpoint_bytes_sent",
                "checkpoint_acks_sent",
                "resync_fulls_sent",
                "deltas_ignored",
                "model_shares_sent",
                "model_entries_adopted",
                "choices_fallback",
            ),
            node=node.node_id,
        )

        # Amortized prediction-driven steering (ROADMAP item 2): one
        # scored prediction round's ranking serves every choice sharing
        # its coarse scenario signature until it ages out or the world
        # changes.  AmortizedSteering itself raises ConfigurationError
        # when the required fallback is missing — at install time, not
        # mid-run.
        self.amortized: Optional[AmortizedSteering] = None
        self._policy_memo: Optional[ChainMemo] = None
        self.policy_budget = policy_budget
        if steering_policy:
            self._policy_memo = ChainMemo(max_entries=policy_memo_entries)
            self.amortized = AmortizedSteering(
                fallback=policy_fallback,
                score_fn=self._policy_score,
                cost_fn=self._policy_cost,
                coalesce_window=coalesce_window,
                max_policy_age=max_policy_age,
                rate_budget=policy_rate_budget,
                initial_allowance=policy_initial_allowance,
            )

        node.inbound_interposers.append(self)
        node.crystalball = self
        # In amortized mode per-dispatch checkpointing is the dominant
        # cost at high event rates, so capture starts disarmed and the
        # scheduler arms it only while it is hungry for a scoring round.
        node.capture_dispatch = self.amortized is None
        if self._chain_memo is not None or self.amortized is not None:
            # Cached chains and policy rankings implicitly read
            # connectivity and liveness (which destinations are
            # reachable/up); neither is part of the recorded footprint
            # or the scenario signature's bucketed hints, so changes
            # flush both.
            node.network.topology_listeners.append(self._on_topology_change)
            node.network.liveness.subscribe(self._on_liveness_change)

    def _on_topology_change(self, kind: str) -> None:
        if self._chain_memo is not None:
            self._chain_memo.invalidate(kind)
        if self._policy_memo is not None:
            self._policy_memo.invalidate(kind)
        if self.amortized is not None:
            self.amortized.invalidate(f"topology:{kind}")

    def _on_liveness_change(self, node_id: int, is_up: bool) -> None:
        if self._chain_memo is not None:
            self._chain_memo.invalidate("liveness")
        if self._policy_memo is not None:
            self._policy_memo.invalidate("liveness")
        if self.amortized is not None:
            self.amortized.invalidate("liveness")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Record the initial checkpoint and begin the periodic tasks."""
        self._record_own_checkpoint()
        if self.checkpoint_period > 0:
            self.node.sim.schedule(
                self.checkpoint_period, self._checkpoint_tick,
                tag=f"cb.checkpoint:{self.node.node_id}",
            )
        if self.prediction_period > 0:
            self.node.sim.schedule(
                self.prediction_period, self._prediction_tick,
                tag=f"cb.predict:{self.node.node_id}",
            )
        if self.model_share_period > 0:
            self.node.sim.schedule(
                self.model_share_period, self._model_share_tick,
                tag=f"cb.modelshare:{self.node.node_id}",
            )
        if self.broadcast_on_change:
            self._last_state_digest = self.node.service.state_digest()

    def neighbors(self) -> List[int]:
        """The neighborhood to exchange checkpoints with.

        Order of preference: an explicit ``neighbors_fn``, the
        service's own ``neighbors()`` method (protocol knowledge,
        typically O(log n) in scalable systems), else every other node
        in the topology (the paper's full-global-knowledge mode).
        """
        if self.neighbors_fn is not None:
            return [p for p in self.neighbors_fn(self.node) if p != self.node.node_id]
        service_neighbors = getattr(self.node.service, "neighbors", None)
        if callable(service_neighbors):
            return [p for p in service_neighbors() if p != self.node.node_id]
        return [p for p in self.node.network.topology.node_ids if p != self.node.node_id]

    # ------------------------------------------------------------------
    # Interposition (Figure 1: runtime sits between network and service)
    # ------------------------------------------------------------------

    def on_inbound(self, node: Node, src: int, msg: Any) -> bool:
        now = node.sim.now
        if isinstance(msg, CheckpointMsg):
            self.stats["checkpoints_received"] += 1
            if self.passive_measurement:
                self.network_model.observe_latency(
                    src, node.node_id, max(0.0, now - msg.sent_at), now,
                )
            self.state_model.update(
                msg.sender, msg.epoch, msg.taken_at, msg.state, timers=msg.timers,
            )
            if msg.ack_requested:
                # Adopt this full as the sender's delta baseline and
                # acknowledge it — only if it actually stuck (a
                # reordered stale full must not be acked).
                adopted = self.state_model.set_baseline(msg.sender, msg.epoch)
                if adopted is not None:
                    node.network.send(
                        node.node_id, src,
                        CheckpointAckMsg(sender=node.node_id, epoch=msg.epoch),
                        size_bytes=64,
                    )
                    self.stats["checkpoint_acks_sent"] += 1
            return False
        if isinstance(msg, CheckpointDeltaMsg):
            self.stats["checkpoints_received"] += 1
            if self.passive_measurement:
                self.network_model.observe_latency(
                    src, node.node_id, max(0.0, now - msg.sent_at), now,
                )
            base = self.state_model.baseline(msg.sender)
            if base is None or base.epoch != msg.base_epoch:
                # We lack the delta's base: skip; the sender keeps
                # sending fulls until our baseline ack reaches it.
                self.stats["deltas_ignored"] += 1
                return False
            patched = dict(base.state)
            patched.update(msg.changed)
            self.state_model.update(
                msg.sender, msg.epoch, msg.taken_at, patched, timers=msg.timers,
            )
            return False
        if isinstance(msg, CheckpointAckMsg):
            current = self._peer_acked.get(msg.sender, -1)
            if msg.epoch > current:
                self._peer_acked[msg.sender] = msg.epoch
            return False
        if isinstance(msg, ModelShareMsg):
            adopted = self.network_model.import_entries(msg.entries)
            self.stats["model_entries_adopted"] += adopted
            return False
        if isinstance(msg, ProbeMsg):
            node.network.send(
                node.node_id, src,
                ProbeReplyMsg(sender=node.node_id, orig_sent_at=msg.sent_at),
                size_bytes=64,
            )
            return False
        if isinstance(msg, ProbeReplyMsg):
            if self.passive_measurement:
                self.network_model.observe_rtt(
                    node.node_id, src, max(0.0, now - msg.orig_sent_at), now,
                )
            return False
        matched = self.steering.matches(src, msg, now)
        if matched is not None:
            self.stats["steered_messages"] += 1
            node.sim.trace.record(
                now, "runtime.steer", node=node.node_id, src=src,
                msg=type(msg).__name__, reason=matched.reason,
            )
            # The explanation record is emitted with identical data in
            # both tracing modes (trace digests must not depend on the
            # causal flag); the happens-before chain of the offending
            # message rides in the causal stamp only.
            tracer = node.sim.causal
            if tracer is not None:
                tracer.annotate_next(
                    chain=tracer.chain_ids(tracer.current_event_id()),
                )
            node.sim.trace.record(
                now, "runtime.steer.explain", node=node.node_id, src=src,
                msg=type(msg).__name__, reason=matched.reason,
                predicted=list(matched.predicted_path),
            )
            if self.flight_recorder is not None:
                causal = (
                    tracer.chain_ids(tracer.current_event_id())
                    if tracer is not None else None
                )
                self.flight_recorder.note_event(
                    now, "runtime.steer",
                    data={
                        "node": node.node_id, "src": src,
                        "msg": type(msg).__name__, "reason": matched.reason,
                        "predicted": list(matched.predicted_path),
                    },
                    causal=causal,
                )
            node.network.break_connection(node.node_id, src)
            return False
        return True

    # ------------------------------------------------------------------
    # Periodic tasks
    # ------------------------------------------------------------------

    def _sim_clock(self) -> float:
        return self.node.sim.now

    def _own_timers(self) -> list:
        now = self.node.sim.now
        return [
            (name, max(0.0, deadline - now), payload)
            for name, deadline, payload in self.node.pending_timers()
        ]

    def _record_own_checkpoint(self) -> None:
        now = self.node.sim.now
        self.state_model.update(
            self.node.node_id, self.epoch, now, self.node.service.checkpoint(),
            timers=self._own_timers(),
        )

    def _checkpoint_tick(self) -> None:
        if self.node.is_up:
            self.broadcast_checkpoint()
        self.node.sim.schedule(
            self.checkpoint_period, self._checkpoint_tick,
            tag=f"cb.checkpoint:{self.node.node_id}",
        )

    def broadcast_checkpoint(self) -> None:
        """Take a checkpoint and send it (full or delta) to every neighbor."""
        now = self.node.sim.now
        self.epoch += 1
        with self.metrics.span(
            "runtime.checkpoint_broadcast", clock=self._sim_clock,
            node=self.node.node_id,
        ):
            # Snapshot the service exactly once per broadcast: the same
            # state feeds the local state model (which deep-copies on
            # update) and the outbound messages.
            state = self.node.service.checkpoint()
            timers = self._own_timers()
            self.state_model.update(
                self.node.node_id, self.epoch, now, state, timers=timers,
            )
            if not self.checkpoint_deltas:
                message = CheckpointMsg(
                    sender=self.node.node_id, epoch=self.epoch,
                    taken_at=now, sent_at=now, state=state, timers=timers,
                )
                peers = self.neighbors()
                size = message.wire_size()
                send_many = getattr(self.node.network, "send_many", None)
                if send_many is not None:
                    # Batched fan-out: one queue insertion per distinct
                    # arrival time instead of one per peer.  Trace- and
                    # order-equivalent to the per-peer loop (see
                    # Network.send_many), so digests are unchanged.
                    send_many(self.node.node_id, peers, message, size_bytes=size)
                    self.stats["checkpoints_sent"] += len(peers)
                    self.stats["checkpoint_bytes_sent"] += size * len(peers)
                else:
                    # Wrapped/instrumented transports without send_many
                    # keep the historical per-peer path.
                    for peer in peers:
                        self._send_checkpoint(peer, message)
                return
            rotate = (
                self._delta_baseline_state is None
                or self._deltas_since_full >= self.full_checkpoint_every
            )
            if rotate:
                # This broadcast is the new baseline every peer must
                # ack before it can receive deltas again.
                self._delta_baseline_state = state
                self._delta_baseline_frozen = {
                    key: freeze(value) for key, value in state.items()
                }
                self._delta_baseline_epoch = self.epoch
                self._deltas_since_full = 0
                changed = None
            else:
                self._deltas_since_full += 1
                frozen_base = self._delta_baseline_frozen
                changed = {
                    key: value for key, value in state.items()
                    if freeze(value) != frozen_base.get(key)
                }
            full = delta = None
            for peer in self.neighbors():
                if rotate or self._peer_acked.get(peer) != self._delta_baseline_epoch:
                    # The peer has not acked the current baseline (or a
                    # rotation just happened): it gets a full and is
                    # asked to adopt it.  Off-rotation fulls are the
                    # resync fallback for missed baselines.
                    if full is None:
                        full = CheckpointMsg(
                            sender=self.node.node_id, epoch=self.epoch,
                            taken_at=now, sent_at=now, state=state,
                            timers=timers, ack_requested=True,
                        )
                    self._send_checkpoint(peer, full)
                    self.stats["full_checkpoints_sent"] += 1
                    if not rotate:
                        self.stats["resync_fulls_sent"] += 1
                else:
                    if delta is None:
                        delta = CheckpointDeltaMsg(
                            sender=self.node.node_id, epoch=self.epoch,
                            base_epoch=self._delta_baseline_epoch,
                            taken_at=now, sent_at=now, changed=changed,
                            timers=timers,
                        )
                    self._send_checkpoint(peer, delta)
                    self.stats["delta_checkpoints_sent"] += 1
            if rotate:
                # A peer's ack from a *previous* baseline epoch must not
                # qualify it for deltas against this one; fulls just went
                # out, so acks will refresh the map.
                self._peer_acked = {
                    peer: epoch for peer, epoch in self._peer_acked.items()
                    if epoch == self._delta_baseline_epoch
                }

    def _send_checkpoint(self, peer: int, message: Any) -> None:
        size = message.wire_size()
        self.node.network.send(self.node.node_id, peer, message, size_bytes=size)
        self.stats["checkpoints_sent"] += 1
        self.stats["checkpoint_bytes_sent"] += size

    def after_dispatch(self, node: Node) -> None:
        """Broadcast a fresh checkpoint when local state changed.

        Called by the node after every dispatch (InboundInterposer
        hook).  This closes most of the staleness window that periodic
        exchange leaves open — the ablation bench ``bench_a1_staleness``
        measures the difference.
        """
        if not self.broadcast_on_change or not node.is_up:
            return
        now = node.sim.now
        if now - self._last_broadcast_at < self.min_broadcast_interval:
            return
        digest_now = node.service.state_digest()
        if digest_now == self._last_state_digest:
            return
        self._last_state_digest = digest_now
        self._last_broadcast_at = now
        self.stats["change_broadcasts"] += 1
        self.broadcast_checkpoint()

    def _model_share_tick(self) -> None:
        if self.node.is_up:
            self.share_model()
        self.node.sim.schedule(
            self.model_share_period, self._model_share_tick,
            tag=f"cb.modelshare:{self.node.node_id}",
        )

    def share_model(self) -> None:
        """Send this node's network-model estimates to every neighbor."""
        entries = self.network_model.export_entries()
        if not entries:
            return
        for peer in self.neighbors():
            msg = ModelShareMsg(sender=self.node.node_id, entries=entries)
            self.node.network.send(self.node.node_id, peer, msg, size_bytes=msg.wire_size())
            self.stats["model_shares_sent"] += 1

    def probe(self, peer: int) -> None:
        """Send an active RTT probe to ``peer``."""
        now = self.node.sim.now
        self.node.network.send(
            self.node.node_id, peer, ProbeMsg(sender=self.node.node_id, sent_at=now),
            size_bytes=64,
        )

    def _prediction_tick(self) -> None:
        if self.node.is_up:
            self.run_prediction()
        self.node.sim.schedule(
            self.prediction_period, self._prediction_tick,
            tag=f"cb.predict:{self.node.node_id}",
        )

    # ------------------------------------------------------------------
    # Consequence prediction + steering
    # ------------------------------------------------------------------

    def current_world(self) -> WorldState:
        """Assemble the snapshot world from the state model.

        The local state is always fresh; neighbor states are the latest
        collected checkpoints.  Nodes the local failure detector (here:
        the liveness registry, a simulation convenience) believes down
        are marked down in the world.
        """
        self._record_own_checkpoint()
        states = self.state_model.latest_states()
        if self.prediction_scope == "neighborhood":
            keep = set(self.neighbors())
            keep.add(self.node.node_id)
            states = {nid: st for nid, st in states.items() if nid in keep}
        down = {nid for nid in states if not self.node.network.liveness.is_up(nid)}
        # Every known node's pending timers: our own are live; neighbors'
        # come from their collected checkpoints (possibly stale, like the
        # state itself — prediction is best-effort by design).
        timers = []
        for nid in states:
            if nid in down:
                continue
            for name, delay, payload in self.state_model.timers_of(nid):
                timers.append(_pending_timer(nid, name, delay, payload))
        # latest_states() returns fresh copies, so the world adopts them.
        return WorldState(
            node_states=states, timers=timers, down=down, time=self.node.sim.now,
            copy_states=False,
        )

    def make_explorer(self) -> Explorer:
        """The explorer configured with this runtime's model and properties.

        One instance is reused across prediction passes so its service
        pool stays warm (the model/property references it holds are
        live and track runtime updates).
        """
        if self._explorer is None:
            self._explorer = Explorer(
                self.service_factory,
                properties=self.properties,
                network_model=self.network_model,
                generic_node=self.generic_node,
                rng_seed=self.node.sim.rng.root_seed,
            )
        return self._explorer

    def run_prediction(self) -> PredictionReport:
        """One consequence-prediction pass over the current snapshot."""
        predictor = ConsequencePredictor(
            self.make_explorer(), chain_depth=self.chain_depth, budget=self.budget,
            workers=self.prediction_workers, metrics=self.metrics,
            memo=self._chain_memo,
        )
        try:
            with self.metrics.span(
                "runtime.predict", clock=self._sim_clock, node=self.node.node_id,
            ) as span:
                world = self.current_world()
                report = predictor.predict(world)
                if self._chain_memo is not None:
                    span.annotate(
                        memo_hits=self._chain_memo.hits,
                        memo_misses=self._chain_memo.misses,
                        memo_entries=len(self._chain_memo),
                    )
        except Exception as exc:
            # The postmortem moment: dump the telemetry ring before the
            # exception propagates, so the last N seconds of samples and
            # steering events survive the crash.
            if self.flight_recorder is not None:
                now = self.node.sim.now
                self.flight_recorder.note_event(
                    now, "runtime.prediction_exception",
                    data={"node": self.node.node_id, "error": repr(exc)},
                )
                self.flight_recorder.dump(
                    f"prediction exception at node {self.node.node_id}: {exc!r}",
                    now=now,
                )
            raise
        self.stats["predictions"] += 1
        self.stats["states_explored"] += report.total_states
        self.last_prediction_summary = report.summary()
        if self.amortized is not None:
            # Each full prediction round refreshes the policy's
            # freshness horizon (entries still age out individually).
            now = self.node.sim.now
            if now > self.amortized.policy.refreshed_at:
                self.amortized.policy.refreshed_at = now
        if self.steering_enabled:
            self._apply_steering(report, world)
        return report

    def _apply_steering(self, report: PredictionReport, world: WorldState) -> None:
        unsafe = [o for o in report.outcomes if not o.is_safe]
        if not unsafe:
            return
        # CrystalBall "checks whether it is safe to steer execution away
        # from the possible inconsistency": our steering actions (drop
        # message + break connection) only *remove* behaviours, so
        # steering is safe exactly when the present state already
        # satisfies every property — then holding position cannot
        # introduce a new inconsistency.
        from ..mc.properties import violated_properties

        violated = violated_properties(world, self.properties)
        if violated:
            self.node.sim.trace.record(
                self.node.sim.now, "runtime.steer_impossible", node=self.node.node_id,
                unsafe=len(unsafe),
            )
            if self.flight_recorder is not None:
                now = self.node.sim.now
                self.flight_recorder.note_event(
                    now, "runtime.violation_live",
                    data={
                        "node": self.node.node_id, "unsafe": len(unsafe),
                        "properties": violated,
                    },
                )
                self.flight_recorder.dump(
                    f"live violation at node {self.node.node_id}: {violated}",
                    now=now,
                )
            return
        now = self.node.sim.now
        for outcome in unsafe:
            for violation in outcome.violations:
                # We can only prevent events at this node: filter the
                # last inbound delivery to us on the violating path.
                local_deliveries = [
                    a for a in violation.path
                    if isinstance(a, DeliverAction) and a.dst == self.node.node_id
                ]
                if not local_deliveries:
                    continue
                action = local_deliveries[-1]
                newly_installed = self.steering.install(
                    EventFilter(
                        src=action.src,
                        msg_key=freeze(action.msg),
                        msg_type=None,
                        installed_at=now,
                        expires_at=now + self.filter_ttl,
                        reason=violation.property_name,
                        predicted_path=tuple(a.describe() for a in violation.path),
                    )
                )
                # A repeated prediction of the same violation merely
                # refreshes the existing filter's TTL; only genuinely
                # new filters count as installations.
                if newly_installed:
                    self.stats["filters_installed"] += 1
                    if self._chain_memo is not None:
                        # A new filter changes what future deliveries
                        # reach the service; cached chains predicted
                        # without it are no longer trustworthy.
                        self._chain_memo.invalidate("steering")
                    if self._policy_memo is not None:
                        self._policy_memo.invalidate("steering")
                    if self.amortized is not None:
                        # Rankings distilled before the install assumed
                        # deliveries the filter now drops.
                        self.amortized.invalidate("steering")
                self.node.sim.trace.record(
                    now, "runtime.filter_installed", node=self.node.node_id,
                    src=action.src, msg=type(action.msg).__name__,
                    reason=violation.property_name,
                )
                if self.flight_recorder is not None and newly_installed:
                    self.flight_recorder.note_event(
                        now, "runtime.filter_installed",
                        data={
                            "node": self.node.node_id, "src": action.src,
                            "msg": type(action.msg).__name__,
                            "reason": violation.property_name,
                            "predicted": [a.describe() for a in violation.path],
                        },
                    )

    # ------------------------------------------------------------------
    # Predictive choice resolution
    # ------------------------------------------------------------------

    def resolve_choice(self, point: ChoicePoint, node: Node) -> Any:
        """Pick the candidate whose predicted future scores best.

        Replays the currently-executing dispatch in a sandbox from its
        pre-dispatch checkpoint, substituting each candidate at the
        pending choice, then runs consequence prediction on the
        resulting world and scores it with the installed objective.

        With ``steering_policy`` enabled the amortized scheduler runs
        instead: most choices answer from the coalescing cache or a
        policy ranking distilled from an earlier scored round, and only
        budgeted misses pay for prediction (see
        :class:`~repro.runtime.policy.AmortizedSteering`).
        """
        if self.amortized is not None:
            with self.metrics.span(
                "runtime.choice", clock=self._sim_clock, node=self.node.node_id,
            ):
                value, source = self.amortized.resolve_explain(point, node)
            self.stats["choices_resolved"] += 1
            if source == "fallback":
                self.stats["choices_fallback"] += 1
            return value
        dispatch = node.current_dispatch
        if dispatch is None:
            # No dispatch to replay (e.g. choice made in on_init):
            # score candidates on the immediate world only.
            return self._resolve_without_replay(point)
        if self._snapshot_too_stale():
            # Confidence gating: the model is too old to predict from;
            # degrade to the cheap fallback instead of guessing.
            self.stats["choices_fallback"] += 1
            if self.stale_fallback is not None:
                return self.stale_fallback.resolve(point, node)
            return point.candidates[0]
        best = point.candidates[0]
        best_score = float("-inf")
        with self.metrics.span(
            "runtime.choice", clock=self._sim_clock, node=self.node.node_id,
        ):
            for candidate in point.candidates:
                score = self._score_candidate(dispatch, candidate)
                node.sim.trace.record(
                    node.sim.now, "runtime.choice_score", node=node.node_id,
                    label=point.label, score=round(score, 6),
                )
                if score > best_score:
                    best, best_score = candidate, score
        self.stats["choices_resolved"] += 1
        return best

    def _snapshot_too_stale(self) -> bool:
        if self.max_snapshot_age is None:
            return False
        now = self.node.sim.now
        ages = [
            self.state_model.age(nid, now)
            for nid in self.state_model.known_nodes()
            if nid != self.node.node_id
            and self.node.network.liveness.is_up(nid)
        ]
        if not ages:
            return True  # nothing collected yet: no basis to predict
        return max(ages) > self.max_snapshot_age

    def _resolve_without_replay(self, point: ChoicePoint) -> Any:
        world = self.current_world()
        base = self.objective.score(world)
        del base  # identical for every candidate; nothing to compare
        return point.candidates[0]

    def _policy_score(self, point: ChoicePoint, node: Node):
        """One scored prediction round for the amortized policy.

        Scores every candidate by sandbox replay + consequence
        prediction (bounded by the smaller ``policy_budget`` and riding
        the dedicated policy chain memo for cross-round reuse) and
        returns ``(ranking, states_explored)`` — or ``None`` when the
        current dispatch was not captured, in which case the scheduler
        arms capture and falls back for now.
        """
        dispatch = node.current_dispatch
        if dispatch is None:
            return None
        before = self.stats["states_explored"]
        scored = []
        weight = self._checkpoint_weight(dispatch)
        with self.metrics.span("runtime.policy_score", node=self.node.node_id):
            for candidate in point.candidates:
                score = self._score_candidate(
                    dispatch, candidate,
                    budget=self.policy_budget, memo=self._policy_memo,
                )
                scored.append((candidate, score))
        # Stable sort: candidates tied on score keep application order,
        # matching the per-choice path's strict-improvement rule.
        scored.sort(key=lambda pair: pair[1], reverse=True)
        # Charge what a round actually costs: predicted states PLUS the
        # checkpoint weight per replayed candidate.  Sandbox replay
        # copies the whole captured state twice per candidate, so on
        # services whose state grows with committed work (decided logs)
        # the real cost is O(state), not O(states explored) — weighing
        # it in makes the rate budget self-concentrate scoring early,
        # when state is small, and throttle it as the log grows.
        cost = (
            self.stats["states_explored"] - before
            + weight * len(point.candidates)
        )
        node.sim.trace.record(
            node.sim.now, "runtime.policy_distilled", node=node.node_id,
            label=point.label, states=cost,
        )
        return tuple(scored), cost

    @staticmethod
    def _checkpoint_weight(dispatch) -> int:
        """Size proxy for one captured state: container lengths summed."""
        return _state_weight(dispatch.checkpoint.values())

    def _policy_cost(self, point: ChoicePoint, node: Node) -> Optional[int]:
        """Projected cost of scoring ``point`` now, for budget admission.

        The weight term dominates a round's bill once the service's
        state has grown, and it is knowable *before* capturing or
        replaying anything: with no dispatch captured yet, the *live*
        state fields give the same size proxy for free.  Denying up
        front matters twice over — an unaffordable round is never
        replayed, and (because denial precedes the defer-and-arm path)
        capture is never armed for it, so the node does not pay the
        O(state) pre-dispatch snapshot either.
        """
        dispatch = node.current_dispatch
        if dispatch is not None:
            weight = self._checkpoint_weight(dispatch)
        else:
            service = getattr(node, "service", None)
            fields = getattr(service, "state_fields", None)
            if not fields:
                return None
            weight = _state_weight(getattr(service, name) for name in fields)
        return weight * len(point.candidates)

    def _score_candidate(
        self, dispatch, candidate: Any,
        budget: Optional[int] = None, memo: Optional[ChainMemo] = None,
    ) -> float:
        effects, checkpoint = self._replay(dispatch, candidate)
        if effects is None:
            return float("-inf")
        states = self.state_model.latest_states()
        states[self.node.node_id] = checkpoint
        down = {nid for nid in states if not self.node.network.liveness.is_up(nid)}
        from ..mc.world import InFlightMessage, PendingTimer

        world = WorldState(
            node_states=states,
            inflight=[
                InFlightMessage(self.node.node_id, dst, msg) for dst, msg in effects.sent
            ],
            timers=[
                PendingTimer(self.node.node_id, name, payload, delay)
                for name, delay, payload in effects.timers_set
            ],
            down=down,
            time=self.node.sim.now,
            copy_states=False,
        )
        immediate = self.objective.score(world)
        if self.prediction_mode == "sampling":
            from ..mc.randomwalk import RandomWalkSimulator

            simulator = RandomWalkSimulator(
                self.make_explorer(), seed=self.node.sim.rng.root_seed,
            )
            report = simulator.sample(
                world, walks=self.sampling_walks, max_steps=self.sampling_steps,
                metric=self.objective.score,
            )
            self.stats["states_explored"] += sum(w.steps for w in report.walks)
            future = report.mean_metric if report.mean_metric is not None else 0.0
            return immediate + future
        predictor = ConsequencePredictor(
            self.make_explorer(), chain_depth=self.chain_depth,
            budget=self.budget if budget is None else budget,
            workers=self.prediction_workers, metrics=self.metrics,
            memo=memo,
        )
        report = predictor.predict(world)
        self.stats["states_explored"] += report.total_states
        self.last_prediction_summary = report.summary()
        return immediate + score_report(
            report, self.objective, aggregate=self.score_aggregate,
        )

    def _replay(self, dispatch, candidate: Any):
        """Re-run the captured dispatch with ``candidate`` at the pending
        choice; later unscripted choices are filled first-candidate."""
        script = list(dispatch.choices) + [candidate]
        for _ in range(self.max_replay_fills):
            service = self._replay_service
            if service is None:
                service = self.service_factory(self.node.node_id)
                self._replay_service = service
            service.restore(dispatch.checkpoint)
            ctx = SandboxContext(
                self.node.node_id, now=self.node.sim.now,
                choice_script=list(script), rng_seed=self.node.sim.rng.root_seed,
            )
            service.ctx = ctx
            try:
                if dispatch.kind == "deliver":
                    service.deliver(dispatch.src, dispatch.msg)
                else:
                    service.fire_timer(dispatch.timer_name, dispatch.payload)
            except ChoiceRequested as request:
                script = list(request.consumed) + [request.point.candidates[0]]
                continue
            return ctx.effects, service.checkpoint()
        return None, None


def _pending_timer(node_id: int, name: str, delay: float, payload: Any):
    from ..mc.world import PendingTimer

    return PendingTimer(node=node_id, name=name, payload=payload, delay=max(0.0, delay))


__all__ = ["CrystalBallRuntime"]
