#!/usr/bin/env python
"""Content distribution: the random vs rarest-random crossover.

Section 3.1: BulletPrime and BitTorrent hard-code different next-block
policies and "neither of these strategies is decidedly superior".  This
example downloads a 96-block file in two deployments:

* scarce   — a single seed: piece diversity is everything, so
             rarest-random wins;
* abundant — a quarter of the swarm seeds: rarity information is
             noise and uniform random spreads load at least as well.

The exposed-choice swarm with the adaptive resolver switches behaviour
by observed scarcity and tracks the better policy in both settings —
the application code never changes.
"""

from repro.eval import run_swarm_experiment

VARIANTS = ("baseline-random", "baseline-rarest", "choice-adaptive")


def main():
    print(__doc__)
    for setting in ("scarce", "abundant"):
        print(f"--- {setting} deployment ---")
        for variant in VARIANTS:
            result = run_swarm_experiment(variant, setting=setting, seed=1)
            print(
                f"{variant:>16}: mean completion {result.mean_completion:5.1f}s   "
                f"last {result.last_completion:5.1f}s   "
                f"({result.finished}/{result.leechers} leechers)"
            )
        print()


if __name__ == "__main__":
    main()
