#!/usr/bin/env python
"""Execution steering: predicting and preventing a safety violation.

Recreates CrystalBall's headline behaviour (Section 2): each node's
runtime periodically collects neighborhood checkpoints, runs
consequence prediction over the assembled snapshot, and — when some
future message delivery would violate a safety property — installs an
event filter that drops the offending message and breaks the connection
with its sender.

The demo service is a quota cell: writers blindly push increments at a
storage node whose invariant is ``value <= QUOTA``.  Without steering
the quota is breached; with steering the runtime predicts the breach
one hop ahead and filters exactly the overflowing increments.
"""

from dataclasses import dataclass

from repro.mc import SafetyProperty
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler

QUOTA = 3
STORAGE = 0
N = 3


@dataclass
class Increment(Message):
    amount: int


class QuotaCell(Service):
    """Node 0 stores a value; the others blindly increment it."""

    state_fields = ("value", "sent")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.value = 0
        self.sent = 0

    def on_init(self) -> None:
        if self.node_id != STORAGE:
            # Writers are staggered so increments arrive one at a time —
            # prediction runs between arrivals and can intervene.
            self.set_timer("push", 1.0 + 0.5 * self.node_id)

    @timer_handler("push")
    def on_push(self, payload) -> None:
        self.send(STORAGE, Increment(amount=1))
        self.sent += 1
        self.set_timer("push", 1.0)

    @msg_handler(Increment)
    def on_increment(self, src: int, msg: Increment) -> None:
        self.value += msg.amount


def quota_property():
    return SafetyProperty(
        "quota-respected",
        lambda world: world.state_of(STORAGE).get("value", 0) <= QUOTA
        if STORAGE in world.node_states else True,
    )


def run(steering: bool):
    cluster = Cluster(N, QuotaCell, seed=11)
    runtimes = install_crystalball(
        cluster, QuotaCell,
        properties=[quota_property()],
        checkpoint_period=0.3,
        prediction_period=0.4 if steering else 0.0,
        chain_depth=2, budget=300,
        filter_ttl=60.0,
        steering_enabled=steering,
    )
    cluster.start_all()
    cluster.run(until=15.0)
    storage = cluster.service(STORAGE)
    runtime = runtimes[STORAGE]
    return storage.value, runtime.stats, cluster


def main():
    print(__doc__)
    value, _, _ = run(steering=False)
    print(f"without steering: stored value = {value}  (quota = {QUOTA})  "
          f"-> violated: {value > QUOTA}")

    value, stats, cluster = run(steering=True)
    print(f"with steering:    stored value = {value}  (quota = {QUOTA})  "
          f"-> violated: {value > QUOTA}")
    print(f"  predictions run:       {stats['predictions']}")
    print(f"  event filters installed: {stats['filters_installed']}")
    print(f"  messages steered away:   {stats['steered_messages']}")
    broken = sum(
        1 for peer in range(1, N)
        if cluster.network.connection_epoch(STORAGE, peer) > 0
    )
    print(f"  connections broken:      {broken}")
    assert value <= QUOTA, "steering failed to protect the invariant"
    print("\nThe runtime predicted the overflow and filtered the offending")
    print("deliveries — the application code never mentioned the quota.")


if __name__ == "__main__":
    main()
