#!/usr/bin/env python
"""Using the model checker directly: safety, liveness, simulation.

The runtime uses ``repro.mc`` internally, but it is a standalone library
too.  This example points all three of its analyses at the hardest
protocol in the repo — Paxos under proposer contention:

1. **safety** — bounded BFS over every interleaving of two competing
   prepare rounds: agreement must hold in every visited state;
2. **liveness** — bounded progress-reachability: from the contention
   snapshot, a decided state must remain reachable;
3. **simulation** — random walks estimate the distribution of how long
   the contention takes to resolve.
"""

from repro.apps.paxos import PaxosConfig, Prepare, make_ballot, make_paxos_factory
from repro.mc import (
    BoundedLivenessChecker,
    Explorer,
    InFlightMessage,
    LivenessProperty,
    RandomWalkSimulator,
    SafetyProperty,
    WorldState,
)

N = 3


def agreement(world):
    decided = {}
    for node_id in world.node_ids:
        for instance, value in world.state_of(node_id).get("chosen", {}).items():
            if instance in decided and decided[instance] != tuple(value):
                return False
            decided[instance] = tuple(value)
    return True


def somebody_decided(world):
    return any(world.state_of(n).get("chosen") for n in world.node_ids)


def contention_world(factory, proposers=((1, 1), (2, 2))):
    services = [factory(i) for i in range(N)]
    inflight = []
    for proposer, round_number in proposers:
        ballot = make_ballot(round_number, proposer, N)
        services[proposer].proposals[0] = {
            "ballot": ballot, "value": (proposer, 99), "proposing": (proposer, 99),
            "phase": "prepare", "promise_from": [], "best_accepted_ballot": -1,
            "best_accepted_value": None, "accepted_from": [], "started_at": 0.0,
            "min_round": 1,
        }
        for target in range(N):
            inflight.append(
                InFlightMessage(proposer, target, Prepare(instance=0, ballot=ballot))
            )
    return WorldState(
        node_states={i: services[i].checkpoint() for i in range(N)},
        inflight=inflight,
    )


def main():
    print(__doc__)
    factory = make_paxos_factory("mencius", PaxosConfig(n=N, requests_per_node=0))
    world = contention_world(factory)
    explorer = Explorer(factory, properties=[SafetyProperty("agreement", agreement)])

    print("--- 1. safety: exhaustive bounded exploration ---")
    result = explorer.bfs(world, max_depth=6, max_states=4000)
    print(f"states explored: {result.states_explored}   "
          f"transitions: {result.transitions}   violations: {len(result.violations)}")
    assert not result.found_violation

    print("\n--- 2. liveness: is a decision still reachable? ---")
    # A single proposer's round: the decision needs 8 causally ordered
    # deliveries; bounded reachability finds the witness.
    single = contention_world(factory, proposers=((1, 1),))
    checker = BoundedLivenessChecker(explorer, max_depth=8, max_states=30_000)
    liveness = checker.check(single, LivenessProperty("decided", somebody_decided))
    print(f"decided-state reachable: {liveness.reachable}   "
          f"witness length: {len(liveness.witness_path)} actions   "
          f"states: {liveness.states_explored}")
    assert liveness.reachable

    print("\n--- 3. simulation: how long does contention take? ---")
    simulator = RandomWalkSimulator(explorer, seed=1)
    report = simulator.sample(world, walks=40, max_steps=30,
                              metric=lambda w: 1.0 if somebody_decided(w) else 0.0)
    print(f"walks deciding within 30 steps: {report.mean_metric:.0%}   "
          f"mean simulated end time: {report.mean_final_time:.2f}s")


if __name__ == "__main__":
    main()
