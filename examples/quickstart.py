#!/usr/bin/env python
"""Quickstart: the choice-exposing programming model in ~60 lines.

Builds a tiny distributed service that must decide which peer to hand
work to, exposes that decision with ``choose``, and runs it three ways:

1. hard-coded first candidate (what the paper argues against),
2. random resolution (Choice-Random),
3. the CrystalBall predictive resolver (Choice-CrystalBall), which
   replays the deciding handler in a sandbox, runs consequence
   prediction over collected checkpoints, and picks the candidate
   maximizing the installed objective.

This wires up every box of the paper's Figure 1: services as state
machines, the runtime interposed on the network, checkpoint exchange,
the predictive model, and choice resolution.
"""

from dataclasses import dataclass

from repro.choice import FirstResolver, PerformanceObjective, RandomResolver
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler

N = 4


@dataclass
class WorkItem(Message):
    units: int


class LoadBalancer(Service):
    """Node 0 hands out work; workers differ in (modelled) speed."""

    state_fields = ("done", "queued")

    # Worker 3 is three times faster than the others.
    SPEED = {1: 1, 2: 1, 3: 3}

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.done = 0
        self.queued = 0

    def on_init(self) -> None:
        if self.node_id == 0:
            self.set_timer("dispatch", 0.5)

    @timer_handler("dispatch")
    def on_dispatch(self, payload) -> None:
        # THE exposed choice: which worker gets this work item?
        worker = self.choose("worker", [1, 2, 3])
        self.send(worker, WorkItem(units=1))
        self.set_timer("dispatch", 0.5)

    @msg_handler(WorkItem)
    def on_work(self, src: int, msg: WorkItem) -> None:
        was_idle = self.queued == 0
        self.queued += msg.units
        if was_idle:
            self.set_timer("finish", 1.0 / self.SPEED[self.node_id])

    @timer_handler("finish")
    def on_finish(self, payload) -> None:
        if self.queued > 0:
            self.queued -= 1
            self.done += 1
        if self.queued > 0:
            self.set_timer("finish", 1.0 / self.SPEED[self.node_id])


def make_objective():
    """Objective handed to the runtime: finish work, and finish it fast.

    The time term is what lets prediction discriminate between workers:
    the fast worker's completion chain reaches "done" at an earlier
    predicted time, so its future scores higher.
    """
    from repro.choice import WeightedObjective

    done = PerformanceObjective(
        "done",
        lambda world: float(
            sum(world.state_of(n).get("done", 0) for n in world.live_nodes())
        ),
    )
    backlog = PerformanceObjective(
        "backlog",
        lambda world: float(
            sum(world.state_of(n).get("queued", 0) for n in world.live_nodes())
        ),
        minimize=True,
    )
    elapsed = PerformanceObjective(
        "elapsed", lambda world: world.time, minimize=True, weight=0.5,
    )
    return WeightedObjective([(1.0, done), (1.0, backlog), (1.0, elapsed)])


def run(label, resolver=None, crystalball=False):
    cluster = Cluster(N, LoadBalancer, seed=7)
    if crystalball:
        install_crystalball(
            cluster, LoadBalancer,
            objective=make_objective(),
            checkpoint_period=0.5, chain_depth=3, budget=300,
        )
    elif resolver is not None:
        for node in cluster.nodes:
            node.choice_resolver = resolver
    cluster.start_all()
    cluster.run(until=20.0)
    done = {s.node_id: s.done for s in cluster.services if s.node_id != 0}
    total = sum(done.values())
    print(f"{label:>20}: total work done = {total:2d}   per-worker = {done}")
    return total


def main():
    print(__doc__)
    hard_coded = run("hard-coded (first)", resolver=FirstResolver())
    random_total = run("choice-random", resolver=RandomResolver(7))
    predictive = run("choice-crystalball", crystalball=True)
    assert predictive >= max(hard_coded, random_total), "predictive resolution should win"
    print("\nThe predictive resolver learned to prefer the fast worker —")
    print("without the application encoding any scheduling policy.")


if __name__ == "__main__":
    main()
