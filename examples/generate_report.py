#!/usr/bin/env python
"""Regenerate the results report by running the experiments.

Usage::

    python examples/generate_report.py            # quick scope, ~2 min
    python examples/generate_report.py full       # paper-scale, longer
    python examples/generate_report.py quick out.md

Writes Markdown to stdout or the given file.
"""

import sys

from repro.eval.report import generate_report


def main() -> int:
    scope = sys.argv[1] if len(sys.argv) > 1 else "quick"
    report = generate_report(scope=scope)
    if len(sys.argv) > 2:
        with open(sys.argv[2], "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {sys.argv[2]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
