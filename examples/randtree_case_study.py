#!/usr/bin/env python
"""The paper's Section 4 case study, end to end.

Reproduces all three headline results:

* E1 — exposing choices shrinks the RandTree implementation and its
  per-handler complexity;
* E2 — 31 nodes join; max depth is near-optimal in every setup;
* E3 — an entire subtree fails and rejoins; the Choice-CrystalBall
  setup rebuilds a shallower tree than Baseline / Choice-Random.

Runs in about half a minute.  Seeds and parameters match the defaults
used by benchmarks/bench_e2_join_depth.py and bench_e3_rejoin_depth.py.
"""

from repro.eval import optimal_depth, run_tree_experiment
from repro.metrics import compare_randtree

SEED = 1


def main():
    print(__doc__)

    print("--- E1: development effort ---")
    print(compare_randtree().format_table())
    print("(paper: 487 -> 280 LoC, -43%; if-else per handler 1.94 -> 0.28)\n")

    print("--- E2 + E3: tree depth (31 nodes, Internet-like topology) ---")
    print(f"optimal depth for 31 nodes, fan-out 2: {optimal_depth(31, 2)}")
    print(f"{'variant':>20} {'after join':>11} {'after rejoin':>13}")
    for variant in ("baseline", "choice-random", "choice-crystalball"):
        result = run_tree_experiment(variant, seed=SEED)
        print(f"{variant:>20} {result.depth_after_join:>11} {result.depth_after_rejoin:>13}")
    print("(paper: join depth 6 everywhere; rejoin 10 / 10 / 9)")


if __name__ == "__main__":
    main()
