#!/usr/bin/env python
"""Consensus over a WAN: exposing the proposer choice (Section 3.1).

Runs the same multi-instance Paxos code in three configurations over a
three-region wide-area topology with CPU load on two replicas:

* fixed    — every command routes through replica 0 (classic leader);
* mencius  — every origin proposes its own commands (round-robin slots);
* choice   — the proposer is an exposed choice; the runtime's network
             model picks the replica minimizing predicted commit
             latency, routing around both loaded machines.

The protocol code is identical across all three; only the routing
policy differs — and for ``choice`` the policy lives in the runtime.
"""

from repro.eval import DEFAULT_LOADS, PAXOS_VARIANTS, run_paxos_experiment


def main():
    print(__doc__)
    print(f"CPU load model (s/proposal per replica): {DEFAULT_LOADS}")
    print(f"\n{'variant':>8} {'mean':>9} {'p99':>9} {'committed':>10}   per-origin mean (ms)")
    for variant in PAXOS_VARIANTS:
        result = run_paxos_experiment(variant, seed=1, requests_per_node=10)
        per_node = {k: round(v * 1000) for k, v in sorted(result.per_node_mean.items())}
        print(
            f"{variant:>8} {result.mean_latency * 1000:>7.0f}ms "
            f"{result.p99_latency * 1000:>7.0f}ms "
            f"{result.committed:>5}/{result.expected}   {per_node}"
        )
    print("\nFixed-leader collapses under the leader's CPU queue; Mencius")
    print("recovers except at the loaded edge replica; the exposed choice")
    print("routes that replica's commands through a fast proxy.")


if __name__ == "__main__":
    main()
