#!/usr/bin/env python
"""Layered services: composing protocols Mace-style.

Mace applications stack services — an overlay on a membership service
on a transport.  ``ServiceStack`` gives this reproduction the same
composition: each layer is an ordinary ``Service`` with its own
handlers, timers, and state; the stack namespaces everything and routes
wire messages per layer, and the whole stack checkpoints as one unit
(so CrystalBall prediction and choice replay work over composed
protocols unchanged).

Demo: a *membership* layer discovers peers with hello/ack exchanges; a
*query* layer, every second, picks one known peer — an exposed choice —
and fetches its counter.  The query layer reads the membership layer's
view through a downcall (``self.stack.layer("member")``), never
touching the network details itself.
"""

from dataclasses import dataclass

from repro.choice import RandomResolver
from repro.statemachine import (
    Cluster,
    Message,
    Service,
    make_stack_factory,
    msg_handler,
    timer_handler,
)

N = 5


@dataclass
class Hello(Message):
    pass


@dataclass
class HelloAck(Message):
    pass


@dataclass
class Query(Message):
    pass


@dataclass
class QueryReply(Message):
    value: int


class MembershipLayer(Service):
    """Discovers peers; maintains the live view for upper layers."""

    state_fields = ("view",)

    def __init__(self, node_id, n=N):
        super().__init__(node_id)
        self.n = n
        self.view = []

    def on_init(self):
        for peer in range(self.n):
            if peer != self.node_id:
                self.send(peer, Hello())

    @msg_handler(Hello)
    def on_hello(self, src, msg):
        if src not in self.view:
            self.view.append(src)
        self.send(src, HelloAck())

    @msg_handler(HelloAck)
    def on_ack(self, src, msg):
        if src not in self.view:
            self.view.append(src)


class QueryLayer(Service):
    """Periodically queries a *chosen* peer's counter."""

    state_fields = ("counter", "replies")

    def __init__(self, node_id):
        super().__init__(node_id)
        self.counter = node_id * 10
        self.replies = []

    def on_init(self):
        self.set_timer("query", 1.0)

    @timer_handler("query")
    def on_query_timer(self, payload):
        view = self.stack.layer("member").view  # downcall to the layer below
        if view:
            target = self.choose("query-target", sorted(view))
            self.send(target, Query())
        self.set_timer("query", 1.0)

    @msg_handler(Query)
    def on_query(self, src, msg):
        self.send(src, QueryReply(value=self.counter))

    @msg_handler(QueryReply)
    def on_reply(self, src, msg):
        self.replies.append((src, msg.value))


def main():
    print(__doc__)
    factory = make_stack_factory([
        ("member", lambda nid: MembershipLayer(nid)),
        ("query", lambda nid: QueryLayer(nid)),
    ])
    cluster = Cluster(N, factory, seed=3,
                      resolver_factory=lambda nid: RandomResolver(3))
    cluster.start_all()
    cluster.run(until=8.0)
    for node_id in range(N):
        stack = cluster.service(node_id)
        view = sorted(stack.layer("member").view)
        replies = stack.layer("query").replies
        print(f"node {node_id}: view={view}  replies={len(replies)}  "
              f"sample={replies[:3]}")
    total = sum(len(cluster.service(i).layer("query").replies) for i in range(N))
    assert total >= N * 6, "every node should have completed most queries"
    print("\nTwo protocols, one node, zero coupling: the query layer never")
    print("names a message type or timer of the membership layer.")


if __name__ == "__main__":
    main()
