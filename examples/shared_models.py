#!/usr/bin/env python
"""Runtime models as shared infrastructure (Sections 3.3.1 and 3.4).

Two extension mechanisms the paper sketches, demonstrated live:

1. **iPlane-style model sharing** — "the network and the system model
   should be exported and kept in the runtime ... allowing the runtime
   to leverage other information services".  Here only node 0 probes
   the network, yet after a round of ``ModelShareMsg`` exchange every
   runtime predicts latencies for pairs it never measured.

2. **Precomputed choice policies** — "removing complex mechanisms for
   making the choices from the critical path, using choices based on
   previous similar scenarios as a fast alternative".  A
   ``CachedResolver`` wraps the expensive predictive resolver; repeat
   scenarios are answered from the policy cache.  The TTL implements
   the paper's "updating the choices as more information becomes
   available": a long TTL would freeze decisions made before the model
   warmed up.
"""

import time

from repro.choice import PerformanceObjective
from repro.runtime import (
    CachedResolver,
    PolicyCache,
    PredictiveResolver,
    install_crystalball,
)
from repro.statemachine import Cluster

# Reuse the quickstart's load-balancer service.
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
from quickstart import LoadBalancer, make_objective  # noqa: E402

N = 4


def demo_model_sharing():
    print("--- 1. iPlane-style model sharing ---")
    cluster = Cluster(N, LoadBalancer, seed=3)
    runtimes = install_crystalball(
        cluster, LoadBalancer, set_resolver=False,
        checkpoint_period=0.0, model_share_period=1.0,
    )
    # Only node 0 measures anything.
    for peer in range(1, N):
        runtimes[0].probe(peer)
    cluster.run(until=0.5)
    before = runtimes[2].network_model.confidence(0, 1, now=cluster.sim.now)
    cluster.run(until=3.0)
    after = runtimes[2].network_model.confidence(0, 1, now=cluster.sim.now)
    rtt = runtimes[2].network_model.rtt(0, 1)
    print(f"node 2's confidence in the (0,1) link: {before:.2f} -> {after:.2f}")
    print(f"node 2 predicts rtt(0,1) = {rtt * 1000:.0f} ms without ever probing it")
    adopted = sum(r.stats["model_entries_adopted"] for r in runtimes)
    print(f"model entries adopted across the cluster: {adopted}\n")


def demo_policy_cache():
    print("--- 2. precomputed choices off the critical path ---")
    results = {}
    for label, cached in (("predictive", False), ("predictive+cache", True)):
        cluster = Cluster(N, LoadBalancer, seed=7)
        install_crystalball(
            cluster, LoadBalancer, objective=make_objective(),
            checkpoint_period=0.5, chain_depth=3, budget=300,
            set_resolver=False,
        )
        cache = PolicyCache(ttl=2.0)
        for node in cluster.nodes:
            resolver = PredictiveResolver()
            node.choice_resolver = CachedResolver(resolver, cache=cache) if cached else resolver
        cluster.start_all()
        start = time.perf_counter()
        cluster.run(until=20.0)
        elapsed = time.perf_counter() - start
        total = sum(s.done for s in cluster.services)
        results[label] = (elapsed, total, cache)
        hit_note = f"  cache hit rate {cache.hit_rate:.0%}" if cached else ""
        print(f"{label:>18}: wall {elapsed:.2f}s  work done {total}{hit_note}")
    slow, fast = results["predictive"][0], results["predictive+cache"][0]
    print(f"\nsame decisions, {slow / fast:.1f}x less wall-clock on the critical path")


def main():
    print(__doc__)
    demo_model_sharing()
    demo_policy_cache()


if __name__ == "__main__":
    main()
