"""A3 — ablation: exhaustive causal chains vs sampled simulations.

Section 3.4 expects "new algorithms for online prediction of future
behaviors" and Section 3.3.2's performance-weighted exploration "turns
a model checker into a simulator that runs a large number of
simulations".  The runtime supports both backends for choice scoring:

* ``chains``   — bounded consequence prediction (exhaustive over the
  causal cone, deterministic);
* ``sampling`` — random-walk simulations (stochastic estimates of the
  objective over futures).

Expected shape on the E3 scenario: both backends preserve the
CrystalBall advantage over random resolution; sampling is noisier
(occasionally one level deeper) — the price of estimating instead of
enumerating.
"""

import statistics
import time

from repro.eval import run_tree_experiment

from conftest import print_table

SEEDS = (1, 4)


def run_all():
    rows = []
    for mode, kwargs in (
        ("chains", dict(prediction_mode="chains")),
        ("sampling", dict(prediction_mode="sampling",
                          sampling_walks=12, sampling_steps=8)),
    ):
        depths = []
        start = time.perf_counter()
        for seed in SEEDS:
            result = run_tree_experiment(
                "choice-crystalball", seed=seed, runtime_kwargs=kwargs,
            )
            depths.append(result.depth_after_rejoin)
        rows.append((mode, depths, time.perf_counter() - start))
    random_depths = [
        run_tree_experiment("choice-random", seed=seed).depth_after_rejoin
        for seed in SEEDS
    ]
    rows.append(("choice-random", random_depths, 0.0))
    return rows


def test_a3_chains_vs_sampling(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "A3: prediction backend vs rejoin quality",
        ("backend", "mean depth", "per-seed", "wall seconds"),
        [(m, f"{statistics.mean(d):.1f}", str(d), f"{t:.1f}") for m, d, t in rows],
    )
    by_mode = {m: statistics.mean(d) for m, d, _ in rows}
    assert by_mode["chains"] <= by_mode["choice-random"]
    # Sampling stays within one level of the exhaustive backend.
    assert by_mode["sampling"] <= by_mode["chains"] + 1.0
