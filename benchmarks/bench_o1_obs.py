"""O1 — observability overhead on the prediction hot path.

The metrics registry is only worth having if it is effectively free:
counters and gauges are plain attribute increments, and every timed
instrument (histograms, spans) sits behind ``registry.enabled``.  This
bench runs the P1 workload — depth-4 consequence prediction over a
16-node RandTree snapshot with a burst of concurrent joins in flight —
through the same optimized pipeline in three modes:

* ``metrics=None`` — the uninstrumented baseline (what the predictor
  does when nobody asked for metrics);
* an **enabled** registry — counters + histograms + states/sec gauges;
* a **disabled** registry — counters only, every timed path gated off.

Asserts all three modes produce byte-identical prediction reports
(instrumentation must never perturb exploration), that the enabled
registry costs < 5% wall time, and that the disabled registry is
indistinguishable from the baseline.  Results land in ``BENCH_O1.json``.
"""

import os

from repro.mc import ConsequencePredictor, Explorer
from repro.obs import MetricsRegistry

from bench_p1_hotpath import (
    CHAIN_DEPTH,
    N_NODES,
    _leaf_digests,
    _timed,
    _violation_signature,
    build_snapshot,
)
from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

BUDGET = 50_000
# Single runs are ~tens of ms, so generous repeats keep the best-of-N
# overhead comparison well inside timer noise.
REPEATS = 10 if QUICK else 30
# Noise headroom: quick mode runs on loaded CI workers.
MAX_ENABLED_OVERHEAD = 0.10 if QUICK else 0.05
MAX_DISABLED_OVERHEAD = 0.05 if QUICK else 0.03


def test_o1_metrics_overhead_on_hot_path():
    from repro.apps.randtree import randtree_properties

    factory, world, config = build_snapshot()
    properties = randtree_properties(config)

    def pipeline(metrics):
        explorer = Explorer(factory, properties=properties)
        predictor = ConsequencePredictor(
            explorer, chain_depth=CHAIN_DEPTH, budget=BUDGET, metrics=metrics,
        )
        world.digest()  # warm the root's per-node digest cache
        return predictor.predict(world)

    enabled_registry = MetricsRegistry()
    disabled_registry = MetricsRegistry(enabled=False)

    base_time, base_report = _timed(lambda: pipeline(None), repeats=REPEATS)
    enabled_time, enabled_report = _timed(
        lambda: pipeline(enabled_registry), repeats=REPEATS)
    disabled_time, disabled_report = _timed(
        lambda: pipeline(disabled_registry), repeats=REPEATS)

    # Instrumentation must never change what prediction explores.
    for report in (enabled_report, disabled_report):
        assert report.total_states == base_report.total_states
        assert _violation_signature(report) == _violation_signature(base_report)
        assert _leaf_digests(report) == _leaf_digests(base_report)

    # The enabled registry actually measured the runs.
    assert enabled_registry.counter("mc.predictions").value == REPEATS
    assert enabled_registry.counter("mc.states").value == \
        REPEATS * base_report.total_states
    assert enabled_registry.histogram("mc.predict.seconds").count == REPEATS
    assert enabled_registry.gauge("mc.states_per_sec").value > 0
    # The disabled one kept its cheap counters but never touched a clock.
    assert disabled_registry.counter("mc.predictions").value == REPEATS
    assert disabled_registry.histogram("mc.predict.seconds").count == 0

    enabled_overhead = enabled_time / base_time - 1.0
    disabled_overhead = disabled_time / base_time - 1.0
    print_table(
        f"O1: depth-{CHAIN_DEPTH} prediction over {N_NODES} nodes "
        f"({base_report.total_states} states), best of {REPEATS}",
        ("mode", "seconds", "overhead"),
        [
            ("metrics=None (baseline)", f"{base_time:.3f}", "—"),
            ("registry enabled", f"{enabled_time:.3f}",
             f"{enabled_overhead:+.1%}"),
            ("registry disabled", f"{disabled_time:.3f}",
             f"{disabled_overhead:+.1%}"),
        ],
    )
    record_metrics(
        "O1",
        nodes=N_NODES,
        chain_depth=CHAIN_DEPTH,
        states=base_report.total_states,
        baseline_seconds=round(base_time, 4),
        enabled_seconds=round(enabled_time, 4),
        disabled_seconds=round(disabled_time, 4),
        enabled_overhead=round(enabled_overhead, 4),
        disabled_overhead=round(disabled_overhead, 4),
        quick_mode=QUICK,
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD, (
        f"enabled-registry overhead {enabled_overhead:+.1%} above the "
        f"{MAX_ENABLED_OVERHEAD:.0%} ceiling"
    )
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-registry overhead {disabled_overhead:+.1%} above the "
        f"{MAX_DISABLED_OVERHEAD:.0%} ceiling"
    )
