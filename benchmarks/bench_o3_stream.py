"""O3 — streaming telemetry overhead: sampler + RunStream on the T1
throughput workload.

Streaming a run must be close to free and must never perturb it.  This
bench pins both halves of that contract:

* **Overhead** — the T1 quick workload (batched Multi-Paxos under
  message chaos, closed-loop client load) timed best-of-``REPEATS``
  with streaming off vs. a 1 Hz :class:`TelemetrySampler` writing
  samples, safety-probe events, and the final summary to a
  :class:`RunStream` JSONL file.  Enabled overhead must stay under
  ``MAX_ENABLED_OVERHEAD`` (<5%).
* **Decided-log neutrality** — ``state_digest`` (every replica's chosen
  log + execution order) must be byte-identical streaming on/off: the
  sampler reads cluster state on its own event-queue tag and never
  mutates it.
* **Trace neutrality** — T1 runs with tracing disabled, so a second,
  fully-traced workload (the canonical 16-node exposed-gossip run) pins
  ``trace_digest`` byte-identical with a sampler attached vs. not.

The stream captured from the timed run is left at ``RUN_STREAM.jsonl``
in the repo root (CI uploads it next to ``BENCH_O3.json``), and every
record in it must parse as a valid stream record.
"""

import os
import statistics
import time

from repro.apps.gossip import GossipConfig, make_exposed_gossip_factory
from repro.choice.resolvers import RandomResolver
from repro.eval import run_throughput_experiment
from repro.eval.chaos_experiment import trace_digest
from repro.obs import TelemetrySampler
from repro.obs.stream import read_stream
from repro.statemachine import Cluster

from conftest import REPO_ROOT, print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

# The T1 quick workload (matches bench_t1_throughput.py quick mode).
TOTAL = 4_000 if QUICK else 20_000
HORIZON = 15.0 if QUICK else 30.0
SEED = 1
CADENCE = 1.0
REPEATS = 7 if QUICK else 5
MAX_ENABLED_OVERHEAD = 0.05

STREAM_PATH = REPO_ROOT / "RUN_STREAM.jsonl"


def _run_t1(stream=None):
    start = time.perf_counter()
    result = run_throughput_experiment(
        steering=True, seed=SEED, total_requests=TOTAL, horizon=HORIZON,
        stream=stream, telemetry_cadence=CADENCE,
    )
    return time.perf_counter() - start, result


def test_o3_stream_overhead_and_digest_neutrality():
    # Interleaved off/on pairs with a median-of-ratios estimator: the
    # quick workload runs ~0.1 s wall, where run-to-run scheduler noise
    # (±10%) dwarfs the true streaming cost, so paired ratios — each
    # pair sharing the same machine conditions — are what isolate it.
    ratios = []
    off_times, on_times = [], []
    off_result = on_result = None
    for _ in range(REPEATS):
        off_elapsed, off_result = _run_t1(stream=None)
        on_elapsed, on_result = _run_t1(stream=str(STREAM_PATH))
        off_times.append(off_elapsed)
        on_times.append(on_elapsed)
        ratios.append(on_elapsed / off_elapsed)
    off_time, on_time = min(off_times), min(on_times)
    overhead = statistics.median(ratios) - 1.0

    # Digest neutrality: the decided logs are byte-identical on/off.
    assert on_result.state_digest == off_result.state_digest, (
        "streaming perturbed the decided log: "
        f"{on_result.state_digest} != {off_result.state_digest}"
    )
    assert on_result.committed == off_result.committed
    assert on_result.safe and off_result.safe

    # The captured stream is complete, valid JSONL with all four
    # record types and a per-second sample cadence.
    records = read_stream(str(STREAM_PATH))
    types = [r["type"] for r in records]
    samples = types.count("sample")
    assert types[0] == "header" and types[-1] == "summary"
    assert samples == int(HORIZON / CADENCE), (
        f"expected {int(HORIZON / CADENCE)} samples, got {samples}"
    )
    assert any(t == "event" for t in types)

    print_table(
        f"O3: T1 streaming overhead ({TOTAL} requests, {HORIZON:.0f}s "
        f"horizon, {CADENCE}s cadence, {REPEATS} interleaved pairs)",
        ("mode", "best seconds", "committed", "median overhead"),
        [
            ("stream off", f"{off_time:.3f}", off_result.committed, "—"),
            ("stream on", f"{on_time:.3f}", on_result.committed,
             f"{overhead * 100:+.1f}%"),
        ],
    )
    record_metrics(
        "O3",
        total_requests=TOTAL,
        horizon_s=HORIZON,
        cadence_s=CADENCE,
        off_seconds=round(off_time, 4),
        on_seconds=round(on_time, 4),
        enabled_overhead=round(overhead, 4),
        stream_records=len(records),
        stream_samples=samples,
        state_digest_identical=on_result.state_digest == off_result.state_digest,
        quick_mode=QUICK,
    )
    assert overhead < MAX_ENABLED_OVERHEAD, (
        f"streaming overhead {overhead * 100:.1f}% exceeds the "
        f"{MAX_ENABLED_OVERHEAD * 100:.0f}% budget"
    )


def _gossip_digest(with_sampler: bool) -> str:
    """The canonical traced 16-node gossip run, sampler on/off."""
    config = GossipConfig(n=16, rumor_count=6, publish_interval=0.1)
    cluster = Cluster(16, make_exposed_gossip_factory(config), seed=1,
                      resolver_factory=lambda nid: RandomResolver(1))
    if with_sampler:
        sampler = TelemetrySampler(cluster.sim, cadence=0.25)
        sampler.watch("net.messages", lambda: cluster.network.messages_sent)
        sampler.watch("sim.events", lambda: cluster.sim.events_dispatched)
        sampler.start(until=8.0)
    cluster.start_all()
    cluster.run(until=8.0)
    if with_sampler:
        assert sampler.samples_taken == 32
    return trace_digest(cluster.sim.trace)


def test_o3_trace_digest_neutral_under_sampling():
    without = _gossip_digest(with_sampler=False)
    with_sampling = _gossip_digest(with_sampler=True)
    record_metrics("O3", trace_digest_identical=without == with_sampling)
    assert without == with_sampling, (
        "sampler ticks changed the trace digest: "
        f"{without} != {with_sampling}"
    )
