"""O2 — causal tracing overhead and digest neutrality.

Causal tracing (``Cluster(causal=True)``) stamps every send, delivery,
timer fire, and choice resolution with trace ids and logical clocks.
The contract that makes it deployable:

* **off by default, ~0% cost**: with ``causal=False`` the hot path pays
  one attribute fetch + ``None`` test per event — the off mode *is* the
  baseline, so we measure it twice and report the spread as the noise
  floor;
* **cheap when on**: the P1 workload deployed end-to-end — a 16-node
  exposed-choice RandTree cluster running the CrystalBall runtime
  (checkpoint gossip + periodic depth-4 consequence prediction) for 20
  simulated seconds — must run with < 10% host-time overhead with
  tracing enabled.  Prediction sandboxes never record, so the absolute
  stamping cost lands only on the live event loop; the bare-simulator
  microcosm (no runtime, every event on the hot path) is measured and
  reported separately as the honest worst case, with the per-event cost
  in microseconds;
* **byte-identical outputs**: stamps live on ``TraceRecord.causal``,
  outside ``record.data`` — so trace digests are byte-identical with
  tracing on or off, and consequence prediction from the traced
  cluster's snapshot produces byte-identical reports (violations and
  leaf-world digests).

Results land in ``BENCH_O2.json``.
"""

import os

from repro.apps.randtree import RandTreeConfig, make_exposed_factory, randtree_properties
from repro.choice.resolvers import RandomResolver
from repro.eval import trace_digest
from repro.mc import ConsequencePredictor, Explorer, world_from_services
from repro.runtime import install_crystalball
from repro.statemachine import Cluster

from bench_p1_hotpath import (
    CHAIN_DEPTH,
    N_NODES,
    _leaf_digests,
    _violation_signature,
)
from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

BUDGET = 50_000
RUNTIME_BUDGET = 400
SIM_HORIZON = 20.0
REPEATS = 2 if QUICK else 4
MAX_ENABLED_OVERHEAD = 0.10
# The bare-simulator microcosm pays the full per-event stamping cost
# against a microsecond-scale event loop — a deliberate worst case.
# The ceiling is a regression tripwire, not a deployment claim.
MAX_RAW_SIM_OVERHEAD = 0.80

def run_duty_cycle(causal: bool) -> Cluster:
    """The P1 workload deployed: CrystalBall runtime on a 16-node
    exposed RandTree — checkpoint gossip, periodic depth-4 prediction,
    and steering armed — for 20 simulated seconds."""
    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(N_NODES, factory, seed=1, causal=causal)
    install_crystalball(
        cluster, factory, properties=randtree_properties(config),
        chain_depth=CHAIN_DEPTH, budget=RUNTIME_BUDGET,
        checkpoint_period=0.5, prediction_period=0.9,
    )
    cluster.start_all()
    cluster.run(until=SIM_HORIZON)
    return cluster


def run_raw_sim(causal: bool) -> Cluster:
    """The bare-simulator microcosm: same cluster, no runtime — every
    wall-clock microsecond is hot-path event processing."""
    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(
        N_NODES, factory, seed=1,
        resolver_factory=lambda nid: RandomResolver(1),
        causal=causal,
    )
    cluster.start_all()
    cluster.run(until=SIM_HORIZON)
    return cluster


def predict_from(cluster: Cluster):
    """Depth-4 consequence prediction from the cluster's live state."""
    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    world = world_from_services(cluster.services, cluster.nodes,
                               time=cluster.sim.now)
    explorer = Explorer(factory, properties=randtree_properties(config))
    predictor = ConsequencePredictor(
        explorer, chain_depth=CHAIN_DEPTH, budget=BUDGET,
    )
    return predictor.predict(world)


def _interleaved(fns, repeats):
    """Best-of-N wall time per labelled thunk, with the thunks run
    round-robin so clock drift and thermal throttling hit every mode
    equally instead of whichever happened to run last."""
    import time

    best = {label: float("inf") for label in fns}
    results = {}
    for _ in range(repeats):
        for label, fn in fns.items():
            start = time.perf_counter()
            results[label] = fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best, results


def test_o2_causal_tracing_overhead_and_neutrality():
    times, clusters = _interleaved(
        {
            "off": lambda: run_duty_cycle(False),
            "on": lambda: run_duty_cycle(True),
            "off2": lambda: run_duty_cycle(False),
        },
        repeats=REPEATS,
    )
    off_time, on_time, off2_time = times["off"], times["on"], times["off2"]
    off_cluster, on_cluster = clusters["off"], clusters["on"]

    # The determinism contract, unchanged by tracing: digests hash only
    # (time, category, node, data), and stamps live outside data.
    off_digest = trace_digest(off_cluster.sim.trace)
    on_digest = trace_digest(on_cluster.sim.trace)
    assert on_digest == off_digest, "causal stamps leaked into the trace digest"
    assert len(on_cluster.sim.trace) == len(off_cluster.sim.trace)

    # Tracing must not perturb what prediction explores either.
    off_report = predict_from(off_cluster)
    on_report = predict_from(on_cluster)
    assert on_report.total_states == off_report.total_states
    assert _violation_signature(on_report) == _violation_signature(off_report)
    assert _leaf_digests(on_report) == _leaf_digests(off_report)

    # The on-mode actually traced: every send/deliver is stamped.
    sends = on_cluster.sim.trace.select("net.send")
    assert sends and all(r.causal is not None for r in sends)

    # The worst-case microcosm: bare event loop, no prediction work to
    # amortize against.  Reported per-event so regressions are visible.
    raw_times, raw_clusters = _interleaved(
        {"off": lambda: run_raw_sim(False), "on": lambda: run_raw_sim(True)},
        repeats=4 * REPEATS,
    )
    raw_off_time, raw_on_time = raw_times["off"], raw_times["on"]
    raw_off, raw_on = raw_clusters["off"], raw_clusters["on"]
    assert trace_digest(raw_on.sim.trace) == trace_digest(raw_off.sim.trace)
    raw_events = len([r for r in raw_on.sim.trace if r.causal is not None])
    per_event_us = (raw_on_time - raw_off_time) / max(1, raw_events) * 1e6

    enabled_overhead = on_time / off_time - 1.0
    raw_overhead = raw_on_time / raw_off_time - 1.0
    # causal=False is the default path — the honest "~0% off" claim is
    # that off IS the baseline; the re-measured spread is pure noise.
    noise_floor = abs(off2_time / off_time - 1.0)
    print_table(
        f"O2: {N_NODES}-node CrystalBall duty cycle, {SIM_HORIZON:.0f}s "
        f"simulated, best of {REPEATS}",
        ("workload", "mode", "seconds", "overhead"),
        [
            ("duty cycle", "causal off (baseline)", f"{off_time:.3f}", "—"),
            ("duty cycle", "causal off (re-measured)", f"{off2_time:.3f}",
             f"{off2_time / off_time - 1.0:+.1%} (noise floor)"),
            ("duty cycle", "causal on", f"{on_time:.3f}",
             f"{enabled_overhead:+.1%}"),
            ("bare sim", "causal off", f"{raw_off_time:.3f}", "—"),
            ("bare sim", "causal on", f"{raw_on_time:.3f}",
             f"{raw_overhead:+.1%} ({per_event_us:.1f}us/event)"),
        ],
    )
    record_metrics(
        "O2",
        nodes=N_NODES,
        sim_horizon=SIM_HORIZON,
        trace_records=len(off_cluster.sim.trace),
        causal_events=len([r for r in on_cluster.sim.trace
                           if r.causal is not None]),
        prediction_states=off_report.total_states,
        off_seconds=round(off_time, 4),
        off_remeasured_seconds=round(off2_time, 4),
        on_seconds=round(on_time, 4),
        enabled_overhead=round(enabled_overhead, 4),
        raw_sim_off_seconds=round(raw_off_time, 4),
        raw_sim_on_seconds=round(raw_on_time, 4),
        raw_sim_overhead=round(raw_overhead, 4),
        tracer_cost_per_event_us=round(per_event_us, 2),
        noise_floor=round(noise_floor, 4),
        digests_identical=on_digest == off_digest,
        reports_identical=True,
        quick_mode=QUICK,
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD, (
        f"causal-tracing overhead {enabled_overhead:+.1%} above the "
        f"{MAX_ENABLED_OVERHEAD:.0%} ceiling"
    )
    assert raw_overhead < MAX_RAW_SIM_OVERHEAD, (
        f"bare-simulator stamping cost {raw_overhead:+.1%} regressed past "
        f"{MAX_RAW_SIM_OVERHEAD:.0%}"
    )
