"""A4 — ablation: keeping the network model up to date (Section 3.3.2).

"As the distributed system evolves, the model can become out-of-date."
We run the streaming-gossip cluster while random congestion episodes
(8× latency) hit the topology, and measure how far each runtime's
network model drifts from ground truth:

* **adaptive** — passive measurement on: every received checkpoint
  refreshes the EWMA latency estimate;
* **frozen** — the model keeps its (initially perfect) oracle bootstrap
  and never updates.

Shape: the frozen model's error grows whenever an episode is active;
the adaptive model tracks the changes and stays several times more
accurate on congested pairs.  (End-to-end gossip latency differs only
within noise in this scenario — full-mesh gossip has little routing
leverage — which EXPERIMENTS.md records honestly.)
"""

import statistics

from repro.apps.gossip import GossipConfig, make_exposed_gossip_factory, make_model_gossip_resolver
from repro.eval.gossip_experiment import heterogeneous_topology
from repro.net import LinkDynamics
from repro.runtime import install_crystalball
from repro.statemachine import Cluster

from conftest import print_table

N = 24
SEED = 2
ROUND = 0.5


def model_error(runtime, topology, observer: int) -> float:
    """Mean |log2(estimate / truth)| of the observer's inbound-latency
    estimates against current ground truth.

    The log-ratio is symmetric: a model stuck 8x high after an episode
    and a model stuck 8x low during one are equally wrong (3 bits) —
    plain relative error would punish the former 8x harder and reward
    frozen under-estimation.
    """
    import math

    errors = []
    for peer in range(N):
        if peer == observer:
            continue
        truth = topology.latency(peer, observer)
        estimate = runtime.network_model.latency(peer, observer)
        errors.append(abs(math.log2(max(estimate, 1e-9) / truth)))
    return statistics.mean(errors)


def run_one(model_updates: bool):
    config = GossipConfig(n=N, round_period=ROUND, rumor_count=30,
                          publish_interval=1.0)
    topology = heterogeneous_topology(N, SEED, slow_fraction=0.0)
    # Materialize explicit links so congestion episodes are per-pair.
    factory = make_exposed_gossip_factory(config)
    cluster = Cluster(N, factory, topology=topology, seed=SEED)
    runtimes = install_crystalball(
        cluster, factory, set_resolver=False,
        checkpoint_period=ROUND, prediction_period=0.0,
        passive_measurement=model_updates,
    )
    for runtime, node in zip(runtimes, cluster.nodes):
        runtime.network_model.bootstrap_from_topology(topology)
        node.choice_resolver = make_model_gossip_resolver()
    dynamics = LinkDynamics(
        cluster.sim, topology, period=1.0, episode_duration=6.0,
        latency_factor=8.0, episode_probability=0.9,
        focus_node=0,  # every episode hits a link of the observed node
    )
    dynamics.start()
    cluster.start_all()
    samples = []
    while cluster.sim.now < 40.0:
        cluster.run(until=cluster.sim.now + 2.0)
        samples.append(model_error(runtimes[0], topology, observer=0))
    return statistics.mean(samples), max(samples)


def test_a4_model_freshness(benchmark):
    (adaptive_mean, adaptive_max), (frozen_mean, frozen_max) = benchmark.pedantic(
        lambda: (run_one(True), run_one(False)), rounds=1, iterations=1,
    )
    print_table(
        "A4: network-model error (|log2 est/truth|, bits) under congestion",
        ("model", "mean error", "max error"),
        [
            ("adaptive (passive measurement)", f"{adaptive_mean:.2f}", f"{adaptive_max:.2f}"),
            ("frozen (bootstrap only)", f"{frozen_mean:.2f}", f"{frozen_max:.2f}"),
        ],
    )
    assert adaptive_mean < frozen_mean
