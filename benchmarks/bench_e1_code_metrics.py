"""E1 — Section 4 development-effort comparison.

Paper: "Exposing choices results in a 43% decrease in lines of code
(from 487 to 280). ... the complexity of the new code is 0.28, which is
significantly lower than the baseline (1.94)."

We measure the same two metrics on our baseline vs choice-exposed
RandTree implementations.  Absolute LoC differ (Python vs Mace C++);
the reduction percentage and the complexity ratio are the reproducible
shape.
"""

from repro.metrics import compare_randtree

from conftest import print_table

PAPER_LOC = (487, 280)
PAPER_COMPLEXITY = (1.94, 0.28)


def test_e1_code_metrics(benchmark):
    report = benchmark.pedantic(compare_randtree, rounds=3, iterations=1)
    rows = [
        ("lines of code", f"{PAPER_LOC[0]} -> {PAPER_LOC[1]}",
         f"{report.baseline.loc} -> {report.exposed.loc}"),
        ("LoC reduction", "43%", f"{report.loc_reduction:.0%}"),
        ("if-else per handler",
         f"{PAPER_COMPLEXITY[0]} -> {PAPER_COMPLEXITY[1]}",
         f"{report.baseline.branches_per_handler:.2f} -> "
         f"{report.exposed.branches_per_handler:.2f}"),
        ("complexity ratio",
         f"{PAPER_COMPLEXITY[0] / PAPER_COMPLEXITY[1]:.1f}x",
         f"{report.baseline.branches_per_handler / report.exposed.branches_per_handler:.1f}x"),
    ]
    print_table("E1: exposing choices vs baseline (RandTree)",
                ("metric", "paper", "measured"), rows)
    assert report.loc_reduction > 0.20
    assert report.baseline.branches_per_handler / report.exposed.branches_per_handler > 3.0
