"""E5 — Section 3.1 content-distribution example (extension experiment).

Paper: BulletPrime and BitTorrent "have two different mechanisms for
choosing the next block to request from any given peer, namely random
and rarest-random.  Experimental results show that neither of these
strategies is decidedly superior."

We sweep two deployment settings — scarce (one seed) and abundant (many
seeds) — and show the crossover: rarest wins under scarcity, random
ties or wins under abundance, and the exposed adaptive choice tracks
the better policy in both without the application changing.
"""

import statistics

from repro.eval import run_swarm_experiment

from conftest import print_table

SEEDS = (1, 2, 3)
VARIANTS = ("baseline-random", "baseline-rarest", "choice-adaptive")
SETTINGS = ("scarce", "abundant")


def run_all():
    results = {}
    for setting in SETTINGS:
        for variant in VARIANTS:
            means = []
            for seed in SEEDS:
                outcome = run_swarm_experiment(variant, setting=setting, seed=seed)
                assert outcome.finished == outcome.leechers
                means.append(outcome.mean_completion)
            results[(setting, variant)] = statistics.mean(means)
    return results


def test_e5_block_choice_crossover(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (setting, variant, f"{results[(setting, variant)]:.1f} s")
        for setting in SETTINGS
        for variant in VARIANTS
    ]
    print_table(
        "E5: mean download completion, random vs rarest vs adaptive",
        ("setting", "variant", "mean completion"),
        rows,
    )
    scarce_random = results[("scarce", "baseline-random")]
    scarce_rarest = results[("scarce", "baseline-rarest")]
    scarce_adaptive = results[("scarce", "choice-adaptive")]
    abundant_random = results[("abundant", "baseline-random")]
    abundant_rarest = results[("abundant", "baseline-rarest")]
    abundant_adaptive = results[("abundant", "choice-adaptive")]
    # Scarce: rarest wins; adaptive tracks it.
    assert scarce_rarest < scarce_random
    assert scarce_adaptive < scarce_random
    # Abundant: rarity information is worthless — random at least ties
    # (within 3%), and adaptive stays within 5% of the best policy.
    assert abundant_random <= abundant_rarest * 1.03
    best_abundant = min(abundant_random, abundant_rarest)
    assert abundant_adaptive <= best_abundant * 1.05
