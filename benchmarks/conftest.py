"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` regenerates one table/figure from the paper (see
DESIGN.md's experiment index) and prints a paper-vs-measured comparison.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def print_table(title: str, headers, rows) -> None:
    """Render a small aligned comparison table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
