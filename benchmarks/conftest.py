"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` regenerates one table/figure from the paper (see
DESIGN.md's experiment index) and prints a paper-vs-measured comparison.
Run with::

    pytest benchmarks/ --benchmark-only -s

Every bench module also persists a machine-readable result: tables
rendered through :func:`print_table` and metrics registered through
:func:`record_metrics` are accumulated per bench id (the ``<id>`` in
``bench_<id>_*.py``) and written to ``BENCH_<ID>.json`` at the repo
root when the session ends, together with per-module wall time and the
current commit.  ``python -m repro.cli bench <id>`` runs one suite and
prints the JSON path.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

# Registry of bench ids -> one-line descriptions.  ``python -m repro.cli
# bench <id>`` resolves ids by filename glob, so this is documentation
# plus a guard: a bench module whose id is missing here fails setup,
# keeping the table in sync with the files.
KNOWN_BENCH_IDS: Dict[str, str] = {
    "E1": "development-effort metrics",
    "E2": "RandTree join-phase depth",
    "E3": "RandTree subtree failure + rejoin depth",
    "E4": "gossip peer choice on heterogeneous links",
    "E5": "content-distribution next-block strategy",
    "E6": "Paxos proposer choice over a loaded WAN",
    "E7": "consequence-prediction depth/cost sweep",
    "A1": "checkpoint staleness sensitivity",
    "A2": "lookahead depth sweep",
    "A3": "prediction execution modes",
    "A4": "adaptation under link degradation",
    "A5": "steady churn",
    "A6": "cluster-size scaling",
    "A7": "safety under chaos",
    "O1": "observability overhead",
    "O2": "causal tracing overhead",
    "O3": "streaming telemetry overhead (sampler + RunStream)",
    "P1": "prediction hot path (digests, pooling, parallelism)",
    "P2": "cross-round incremental prediction + delta checkpoints",
    "R1": "adversarial scenario search (fuzz vs random)",
    "S1": "simulator scale (hot loop, sparse topologies, partial views)",
    "T1": "batched Multi-Paxos throughput under chaos (steering on/off)",
    "T2": "amortized prediction-driven steering throughput (off/static/amortized)",
}

# Per-bench-id accumulators, flushed to BENCH_<ID>.json at session end.
_RESULTS: Dict[str, Dict[str, Any]] = {}
_CURRENT_ID: Optional[str] = None


def bench_id_of(path: Any) -> Optional[str]:
    """The bench id encoded in a module filename (bench_e7_... -> E7)."""
    parts = Path(str(path)).stem.split("_")
    if len(parts) >= 2 and parts[0] == "bench":
        return parts[1].upper()
    return None


def bench_json_path(bench_id: str) -> Path:
    """Where ``BENCH_<ID>.json`` lives (repo root)."""
    return REPO_ROOT / f"BENCH_{bench_id.upper()}.json"


def _record_for(bench_id: str) -> Dict[str, Any]:
    return _RESULTS.setdefault(
        bench_id, {"metrics": {}, "tables": [], "wall_time_s": 0.0}
    )


def record_metrics(bench_id: str, **metrics: Any) -> None:
    """Register headline metrics for a bench id (merged into its JSON)."""
    _record_for(bench_id.upper())["metrics"].update(metrics)


def print_table(title: str, headers, rows) -> None:
    """Render a small aligned comparison table to stdout (and record it
    into the current bench module's JSON result)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if _CURRENT_ID is not None:
        _record_for(_CURRENT_ID)["tables"].append(
            {
                "title": title,
                "headers": [str(h) for h in headers],
                "rows": [[str(c) for c in row] for row in rows],
            }
        )


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


def write_bench_json(bench_id: str) -> Path:
    """Write/update ``BENCH_<ID>.json`` from the accumulated record."""
    bench_id = bench_id.upper()
    record = _record_for(bench_id)
    path = bench_json_path(bench_id)
    payload = {
        "bench": bench_id,
        "commit": _git_commit(),
        "wall_time_s": round(record["wall_time_s"], 3),
        "metrics": record["metrics"],
        "tables": record["tables"],
    }
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


# ----------------------------------------------------------------------
# pytest hooks: attribute tables/durations to bench ids, flush at exit
# ----------------------------------------------------------------------

def pytest_runtest_setup(item) -> None:
    global _CURRENT_ID
    _CURRENT_ID = bench_id_of(item.fspath)
    if _CURRENT_ID is not None and _CURRENT_ID not in KNOWN_BENCH_IDS:
        raise RuntimeError(
            f"bench id {_CURRENT_ID!r} is not registered in "
            f"benchmarks/conftest.py KNOWN_BENCH_IDS"
        )


def pytest_runtest_logreport(report) -> None:
    if report.when != "call":
        return
    bench_id = bench_id_of(report.fspath)
    if bench_id is not None:
        _record_for(bench_id)["wall_time_s"] += report.duration


def pytest_sessionfinish(session, exitstatus) -> None:
    for bench_id in sorted(_RESULTS):
        path = write_bench_json(bench_id)
        print(f"\nbench results -> {path}")
