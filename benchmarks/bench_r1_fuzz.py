"""R1 — adversarial scenario search effectiveness.

Not a paper figure: the fuzzer hunts safety violations the chaos
sweeps (A7) only ever *assert the absence of*.  The claim under test
is that coverage-guided search — trace-novelty plus near-violation
scores mined from consequence prediction — finds violations faster
than drawing plans at random from the same surface:

* **violations per 1k executions**, guided vs random, same budget and
  campaign seed, on both targets;
* **first-violation execution index** (how much budget until the
  first counterexample);
* **shrink ratio**: events kept after delta-debugging the first
  counterexample to local minimality, with the shrunk plan confirmed
  to still violate under the same seed.

Campaigns are pure functions of their seed, so the numbers here are
exactly reproducible.
"""

import os

import pytest

from repro.fuzz import FuzzCampaign, make_target, shrink_counterexample

from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

# Guided needs ~150-400 executions to the first violation on these
# targets; the full budget gives random a fair chance to catch up.
BUDGET = 400 if QUICK else 2000
SEED = 1
TARGETS = ("randtree", "paxos")

_campaigns = {}


def _run(target_name: str, mode: str):
    key = (target_name, mode)
    if key not in _campaigns:
        campaign = FuzzCampaign(
            make_target(target_name), seed=SEED, budget=BUDGET, mode=mode,
        )
        _campaigns[key] = campaign.run()
    return _campaigns[key]


def _per_1k(count: int, executions: int) -> float:
    return 1000.0 * count / executions if executions else 0.0


@pytest.mark.parametrize("target_name", TARGETS)
def test_r1_guided_vs_random(benchmark, target_name):
    """Guided search finds at least as many violations as random."""
    guided = benchmark.pedantic(
        lambda: _run(target_name, "guided"), rounds=1, iterations=1,
    )
    random_result = _run(target_name, "random")
    rows = []
    for label, result in (("guided", guided), ("random", random_result)):
        first = result.first_violation_execution
        rows.append((
            label, result.executions, len(result.counterexamples),
            f"{_per_1k(len(result.counterexamples), result.executions):.1f}",
            first if first is not None else "-",
            result.coverage.get("features", 0),
        ))
    print_table(
        f"R1: fuzz vs random ({target_name}, seed={SEED}, budget={BUDGET})",
        ("mode", "executions", "violations", "per-1k", "first-at", "features"),
        rows,
    )
    record_metrics(
        "R1",
        **{
            f"{target_name}_guided_violations_per_1k":
                round(_per_1k(len(guided.counterexamples), guided.executions), 2),
            f"{target_name}_random_violations_per_1k":
                round(_per_1k(len(random_result.counterexamples),
                              random_result.executions), 2),
            f"{target_name}_guided_first_violation":
                guided.first_violation_execution,
            f"{target_name}_random_first_violation":
                random_result.first_violation_execution,
        },
    )
    assert guided.found_violation, "guided search found no violation in budget"
    # The effectiveness claim: guided at least matches random on this
    # fixed seed.  Violation counts are too noisy to compare at the
    # quick budget, so the dominance check runs at full budget only.
    if not QUICK:
        assert len(guided.counterexamples) >= len(random_result.counterexamples)


@pytest.mark.parametrize("target_name", TARGETS)
def test_r1_shrink_ratio(benchmark, target_name):
    """The first counterexample shrinks and still violates."""
    result = _run(target_name, "guided")
    if not result.counterexamples:
        pytest.skip("no counterexample at this budget")
    ce = result.counterexamples[0]
    target = make_target(target_name)
    shrink = benchmark.pedantic(
        lambda: shrink_counterexample(target, ce.plan, ce.seed),
        rounds=1, iterations=1,
    )
    print_table(
        f"R1: shrink ({target_name})",
        ("events-in", "events-out", "ratio", "horizon", "oracle-runs",
         "confirmed"),
        [(
            len(shrink.original), len(shrink.shrunk), f"{shrink.ratio:.2f}",
            f"{shrink.horizon:g}" if shrink.horizon is not None else "-",
            shrink.executions_used, shrink.confirmed,
        )],
    )
    record_metrics(
        "R1",
        **{
            f"{target_name}_shrink_ratio": round(shrink.ratio, 3),
            f"{target_name}_shrink_events": len(shrink.shrunk),
        },
    )
    assert shrink.confirmed, "shrunk plan no longer violates"
    assert len(shrink.shrunk) <= len(shrink.original)


def test_r1_campaign_determinism(benchmark):
    """Same (target, seed, budget) -> byte-identical campaign record."""

    def twice():
        a = FuzzCampaign(make_target("randtree"), seed=3, budget=60).run()
        b = FuzzCampaign(make_target("randtree"), seed=3, budget=60).run()
        return a, b

    a, b = benchmark.pedantic(twice, rounds=1, iterations=1)
    assert a.corpus_digests() == b.corpus_digests()
    assert a.coverage == b.coverage
    assert [(ce.plan.digest(), ce.seed, ce.trace_digest)
            for ce in a.counterexamples] == \
           [(ce.plan.digest(), ce.seed, ce.trace_digest)
            for ce in b.counterexamples]
    record_metrics("R1", determinism_corpus_size=len(a.corpus))
