"""E3 — Section 4 failure/rejoin tree depth (the headline result).

Paper: "We then fail an entire subtree (about half of the nodes), and
then let these nodes rejoin.  Baseline and Choice-Random exhibit
identical maximum depth (10), while the Choice-CrystalBall version is
better with 9 levels."

Shape to reproduce: after the failure/rejoin, Choice-CrystalBall's tree
is at most as deep as the other two setups, and strictly shallower in
the aggregate (the absolute depths differ — our rejoin storm differs
from the paper's testbed timing).
"""

import statistics

from repro.eval import run_tree_experiment

from conftest import print_table

SEEDS = (1, 2, 3, 4, 5)
PAPER = {"baseline": 10, "choice-random": 10, "choice-crystalball": 9}


def run_all():
    results = {}
    for variant in PAPER:
        depths = [
            run_tree_experiment(variant, seed=seed).depth_after_rejoin
            for seed in SEEDS
        ]
        results[variant] = depths
    return results


def test_e3_rejoin_depth(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (variant, PAPER[variant],
         f"{statistics.mean(depths):.2f}", str(depths))
        for variant, depths in results.items()
    ]
    print_table(
        "E3: max depth after failing a subtree and rejoining",
        ("variant", "paper", "measured mean", "per-seed"),
        rows,
    )
    baseline = statistics.mean(results["baseline"])
    random_mean = statistics.mean(results["choice-random"])
    crystal = statistics.mean(results["choice-crystalball"])
    # Paper shape: Baseline ~= Choice-Random, Choice-CrystalBall better.
    assert abs(baseline - random_mean) <= 1.0
    assert crystal < baseline
    assert crystal <= random_mean
    # CrystalBall never worse on any seed.
    for seed_index in range(len(SEEDS)):
        assert (results["choice-crystalball"][seed_index]
                <= max(results["baseline"][seed_index],
                       results["choice-random"][seed_index]))
