"""A7 — safety under chaos.

Not a paper figure: the chaos engine sweeps randomized fault plans
(drop / duplicate / reorder / corrupt, flapping links, partitions,
crash-recovery with amnesia) against the two protocols the paper
studies and asserts what must never break:

* RandTree stays structurally sane — no self-loops, bounded degree,
  no cycle among mutually-agreed parent/child edges — in every
  configuration, for Baseline and Choice-CrystalBall alike;
* Paxos chooses at most one value per instance across all replicas;
* the same ``(configuration, seed)`` yields byte-identical trace
  digests (chaos runs are replayable);
* the at-least-once reliability layer recovers the loss-free E2 join
  outcome under 10% adversarial message loss.

Degradation (depth, membership, commits) is recorded alongside — that
is the liveness price of the faults, reported but not asserted.
"""

import pytest

from repro.eval import (
    run_chaos_paxos_experiment,
    run_chaos_tree_experiment,
    run_reliable_join_comparison,
    standard_plans,
)

from conftest import print_table

SEEDS = (1, 2, 3)
N_TREE = 15
TREE_HORIZON = 10.0
PAXOS_HORIZON = 20.0
TREE_VARIANTS = ("baseline", "choice-crystalball")

TREE_PLANS = {p.name: p for p in standard_plans(N_TREE, TREE_HORIZON)}
PAXOS_PLANS = {
    p.name: p for p in standard_plans(5, PAXOS_HORIZON, amnesia=False)
}


@pytest.mark.parametrize("plan_name", sorted(TREE_PLANS))
@pytest.mark.parametrize("variant", TREE_VARIANTS)
def test_a7_randtree_safety_under_chaos(benchmark, variant, plan_name):
    """Structural invariants hold for every seed of every plan."""
    plan = TREE_PLANS[plan_name]

    def sweep():
        return [
            run_chaos_tree_experiment(variant, seed=seed, n=N_TREE, plan=plan)
            for seed in SEEDS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"A7: RandTree under {plan_name} ({variant})",
        ("seed", "depth", "joined", "probes", "faults", "violations"),
        [
            (
                r.seed, r.final_depth, f"{r.joined}/{r.n}", r.probes,
                sum(r.chaos_stats.values()), len(r.violations),
            )
            for r in results
        ],
    )
    for r in results:
        assert r.safe, f"seed {r.seed}: {r.violations[:3]}"
        assert r.probes > 0
        # Liveness under a healed plan: the root keeps a working tree.
        assert r.joined >= r.n - 2


@pytest.mark.parametrize("plan_name", sorted(PAXOS_PLANS))
def test_a7_paxos_single_decree_under_chaos(benchmark, plan_name):
    """Single-decree agreement holds for every seed of every plan."""
    plan = PAXOS_PLANS[plan_name]

    def sweep():
        return [
            run_chaos_paxos_experiment("mencius", seed=seed, plan=plan)
            for seed in SEEDS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"A7: Paxos under {plan_name}",
        ("seed", "committed", "faults", "agreement"),
        [
            (
                r.seed, f"{r.committed}/{r.expected}",
                sum(r.chaos_stats.values()), r.agreement,
            )
            for r in results
        ],
    )
    for r in results:
        assert r.safe, f"seed {r.seed}: agreement violated under {plan_name}"
        assert r.committed > 0


def test_a7_trace_digest_determinism(benchmark):
    """Identical (configuration, seed) → byte-identical trace digests."""
    plan = TREE_PLANS["message-chaos"]

    def run_twice():
        first = run_chaos_tree_experiment(
            "baseline", seed=SEEDS[0], n=N_TREE, plan=plan,
        )
        second = run_chaos_tree_experiment(
            "baseline", seed=SEEDS[0], n=N_TREE, plan=plan,
        )
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    print_table(
        "A7: replay determinism",
        ("run", "digest"),
        [("first", first.trace_digest[:32]), ("second", second.trace_digest[:32])],
    )
    assert first.trace_digest == second.trace_digest


def test_a7_reliability_masks_loss(benchmark):
    """At-least-once delivery recovers the loss-free join outcome."""

    def sweep():
        return [
            run_reliable_join_comparison(seed=seed, n=N_TREE, loss=0.10)
            for seed in SEEDS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "A7: E2 join at 10% loss with reliability layer",
        ("seed", "loss-free depth", "reliable depth", "retransmissions", "recovered"),
        [
            (
                r.seed, r.depth_loss_free, r.depth_reliable,
                r.reliable_stats.get("retransmissions", 0), r.recovered,
            )
            for r in results
        ],
    )
    for r in results:
        assert r.joined_reliable == r.n
        assert r.recovered, (
            f"seed {r.seed}: depth {r.depth_reliable} != {r.depth_loss_free}"
        )
