"""S1 — simulator scale: hot-loop rework, sparse topologies, partial
views.

The scheduler/transport rework targets 1,000+ node worlds: slim event
entries and batched tombstone compaction in :class:`EventQueue`, a
``pop_if`` dispatch loop, memoized per-pair delivery tags, a cached
loss stream, trace records gated behind ``TraceLog.enabled``, and
``send_many`` collapsing a k-peer broadcast into one queue insertion.

This bench measures four things:

* **Hot loop** — a 16-node broadcast storm against a faithful
  re-creation of the seed implementation (``SeedEventQueue`` with
  ordered dataclass entries and a ``(time, seq)`` side dict, the seed
  ``peek_time``+``step`` run loop, and the seed per-destination send
  path: per-send ``rng.stream`` lookup, f-string delivery tags,
  unconditional trace records).  The seed could not disable record
  construction, so the optimized rows are shown both with tracing on
  (pure queue/transport win) and off (the configuration 1k-node runs
  actually use).  Asserts >= 5x deliveries/sec (>= 2.5x quick).
* **Scaling curve** — ViewGossip over grouped (lazy) transit-stub
  topologies at n = 16 / 128 / 1,000 / 4,096: events/sec and per-node
  build memory (tracemalloc).  Quick mode stops at 128.
* **Safety at 1k** — gossip coverage 1.0 and the RandTree safety
  properties over partial views at n = 1,000 (128 quick).
* **Prediction tick** — a neighborhood-scoped CrystalBall prediction
  round at n = 1,000 stays under one second.

Byte-identity is pinned: the canonical 16-node gossip and
RandTree+CrystalBall workloads and a depth-3 prediction report must
reproduce the digests captured on the seed commit.  Results land in
``BENCH_S1.json``.
"""

import heapq
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.gossip import (
    GossipConfig,
    coverage,
    make_exposed_gossip_factory,
    make_view_gossip_factory,
)
from repro.apps.randtree import (
    RandTreeConfig,
    make_balance_objective,
    make_exposed_factory,
    make_view_randtree_factory,
    randtree_properties,
    tree_depths,
    unattached_nodes,
)
from repro.apps.randtree.common import child_parent_consistent, no_self_loop
from repro.choice.resolvers import RandomResolver
from repro.eval.chaos_experiment import trace_digest
from repro.mc import ConsequencePredictor, Explorer, world_from_services
from repro.net import Network, Topology, ViewConfig, full_mesh, transit_stub
from repro.net.topology import Link
from repro.runtime import CrystalBallRuntime, install_crystalball
from repro.sim import LivenessRegistry, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.statemachine import Cluster

from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

HOTLOOP_NODES = 16
HOTLOOP_SIM_SECONDS = 1.0 if QUICK else 2.0
HOTLOOP_PERIOD = 0.02
REPEATS = 2 if QUICK else 3
MIN_SPEEDUP = 2.5 if QUICK else 5.0

# World sizes for the scaling curve: n -> (n_stubs, stub_size).
SHAPES = {16: (4, 4), 128: (8, 16), 1000: (25, 40), 4096: (64, 64)}
CURVE_SIZES = [16, 128] if QUICK else [16, 128, 1000, 4096]
SAFETY_N = 128 if QUICK else 1000
PREDICTION_N = 128 if QUICK else 1000

# Trace digests of the canonical 16-node workloads, captured on the
# seed commit (f459e1a) before the hot-loop rework landed.  These runs
# must stay byte-identical forever.
SEED_GOSSIP_DIGEST = (
    "d634529e0c3ca3c1d73fe7845d875fb80e509a4b622981d4b0392f7f9fc70866"
)
SEED_TREE_DIGEST = (
    "5682992cfef63679defa1ee008d6acbd1eb3ffb9732cb20dab27a6f450a740e2"
)
SEED_PREDICTION_DIGEST = "3ba33229c4e12a08"


# ----------------------------------------------------------------------
# Seed (pre-PR) implementation, re-created for an honest baseline
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeedEventHandle:
    time: float
    seq: int
    tag: str


@dataclass(order=True)
class _SeedEntry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class SeedEventQueue:
    """The seed queue: ordered dataclass entries + (time, seq) dict."""

    def __init__(self) -> None:
        self._heap: List[_SeedEntry] = []
        self._entries: Dict[Tuple[float, int], _SeedEntry] = {}
        self._next_seq = 0
        self._live = 0

    def push(self, time: float, callback, tag: str = "") -> SeedEventHandle:
        seq = self._next_seq
        self._next_seq += 1
        entry = _SeedEntry(time=float(time), seq=seq, callback=callback, tag=tag)
        heapq.heappush(self._heap, entry)
        self._entries[(entry.time, seq)] = entry
        self._live += 1
        return SeedEventHandle(time=entry.time, seq=seq, tag=tag)

    def cancel(self, handle: SeedEventHandle) -> bool:
        entry = self._entries.get((handle.time, handle.seq))
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        self._live -= 1
        return True

    def peek_time(self) -> Optional[float]:
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    def pop(self):
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        entry = heapq.heappop(self._heap)
        del self._entries[(entry.time, entry.seq)]
        self._live -= 1
        return entry.time, entry.tag, entry.callback

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            entry = heapq.heappop(self._heap)
            del self._entries[(entry.time, entry.seq)]

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class SeedSim:
    """The seed scheduler: peek_time + step per event, no pop_if."""

    def __init__(self, seed: int = 0) -> None:
        self.queue = SeedEventQueue()
        self.now = 0.0
        self.rng = RngRegistry(seed)
        self.trace = TraceLog()
        self.events_dispatched = 0

    def schedule(self, delay: float, callback, tag: str = "") -> SeedEventHandle:
        return self.queue.push(self.now + delay, callback, tag=tag)

    def schedule_at(self, time: float, callback, tag: str = "") -> SeedEventHandle:
        return self.queue.push(time, callback, tag=tag)

    def step(self) -> bool:
        try:
            time, _tag, callback = self.queue.pop()
        except IndexError:
            return False
        self.now = time
        self.events_dispatched += 1
        callback()
        return True

    def run(self, until: Optional[float] = None) -> int:
        dispatched = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            dispatched += 1
        if until is not None and until > self.now:
            self.now = until
        return dispatched


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class SeedNet:
    """The seed transport send/deliver path, verbatim control flow:
    counters, per-send ``rng.stream("net.loss")`` lookup, f-string
    delivery tags, one queue insertion per destination, unconditional
    trace records."""

    def __init__(self, sim: SeedSim, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self.liveness = LivenessRegistry()
        self._endpoints: Dict[int, Callable[[int, int, Any], None]] = {}
        self._fault_interposers: List[Any] = []
        self._busy_until: Dict[Tuple[int, int], float] = {}
        self._uplink_bps: Dict[int, float] = {}
        self._uplink_busy: Dict[int, float] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._conn_epoch: Dict[Tuple[int, int], int] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    def attach(self, node_id: int, on_message) -> None:
        self._endpoints[node_id] = on_message

    def _consult_faults(self, src, dst, payload):
        for interposer in self._fault_interposers:
            decision = interposer.apply(src, dst, payload, self.sim.now)
            if decision is not None:
                return decision
        return None

    def send(self, src: int, dst: int, payload: Any,
             size_bytes: int = 1024, reliable: bool = True) -> bool:
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if not self.liveness.is_up(src):
            self.messages_dropped += 1
            return False
        fault = self._consult_faults(src, dst, payload)
        if fault is not None and fault.drop:
            self.messages_dropped += 1
            return False
        link = self.topology.link(src, dst)
        rng = self.sim.rng.stream("net.loss")
        delay = link.latency
        if reliable:
            while link.loss > 0.0 and rng.random() < link.loss:
                delay += 0.2 + link.latency
        elif link.loss > 0.0 and rng.random() < link.loss:
            self.messages_dropped += 1
            return False
        start = max(self.sim.now, self._busy_until.get((src, dst), 0.0))
        uplink_bps = self._uplink_bps.get(src)
        if uplink_bps is not None:
            start = max(start, self._uplink_busy.get(src, 0.0))
            tx_done = start + (size_bytes * 8.0) / min(link.bandwidth, uplink_bps)
            self._uplink_busy[src] = tx_done
        else:
            tx_done = start + link.transmission_time(size_bytes)
        self._busy_until[(src, dst)] = tx_done
        arrival = tx_done + delay
        if reliable:
            arrival = max(arrival, self._last_delivery.get((src, dst), 0.0))
            self._last_delivery[(src, dst)] = arrival
        epoch = self._conn_epoch.get(_pair(src, dst), 0) if reliable else None
        kind = type(payload).__name__
        self.sim.trace.record(
            self.sim.now, "net.send", node=src, dst=dst, size=size_bytes,
            kind=kind,
        )
        self.sim.schedule_at(
            arrival,
            lambda: self._deliver(src, dst, payload, epoch),
            tag=f"net.deliver:{src}->{dst}",
        )
        return True

    def _deliver(self, src, dst, payload, epoch) -> None:
        if epoch is not None and self._conn_epoch.get(_pair(src, dst), 0) != epoch:
            self.messages_dropped += 1
            return
        if not self.liveness.is_up(dst):
            self.messages_dropped += 1
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.sim.trace.record(self.sim.now, "net.deliver", node=dst, src=src)
        endpoint(src, dst, payload)


# ----------------------------------------------------------------------
# Hot loop: 16-node broadcast storm
# ----------------------------------------------------------------------


def _run_seed_hotloop() -> Tuple[float, int]:
    """Seed implementation: per-destination sends, seed queue/loop."""
    sim = SeedSim(seed=1)
    net = SeedNet(sim, full_mesh(HOTLOOP_NODES, latency=0.01))
    delivered = [0]
    for i in range(HOTLOOP_NODES):
        net.attach(i, lambda src, dst, payload: delivered.__setitem__(
            0, delivered[0] + 1))
    peers = {i: [p for p in range(HOTLOOP_NODES) if p != i]
             for i in range(HOTLOOP_NODES)}

    def make_tick(node_id: int):
        def tick() -> None:
            for peer in peers[node_id]:
                net.send(node_id, peer, "ping")
            sim.schedule(HOTLOOP_PERIOD, tick, tag=f"tick:{node_id}")
        return tick

    for i in range(HOTLOOP_NODES):
        sim.schedule(HOTLOOP_PERIOD, make_tick(i), tag=f"tick:{i}")
    start = time.perf_counter()
    sim.run(until=HOTLOOP_SIM_SECONDS)
    return time.perf_counter() - start, delivered[0]


def _run_new_hotloop(trace_enabled: bool) -> Tuple[float, int]:
    """Reworked implementation: send_many broadcasts, slim queue."""
    sim = Simulator(seed=1)
    sim.trace.enabled = trace_enabled
    net = Network(sim, full_mesh(HOTLOOP_NODES, latency=0.01))
    delivered = [0]
    for i in range(HOTLOOP_NODES):
        net.attach(i, lambda src, dst, payload: delivered.__setitem__(
            0, delivered[0] + 1))
    peers = {i: [p for p in range(HOTLOOP_NODES) if p != i]
             for i in range(HOTLOOP_NODES)}

    def make_tick(node_id: int):
        def tick() -> None:
            net.send_many(node_id, peers[node_id], "ping")
            sim.schedule(HOTLOOP_PERIOD, tick, tag=f"tick:{node_id}")
        return tick

    for i in range(HOTLOOP_NODES):
        sim.schedule(HOTLOOP_PERIOD, make_tick(i), tag=f"tick:{i}")
    start = time.perf_counter()
    sim.run(until=HOTLOOP_SIM_SECONDS)
    return time.perf_counter() - start, delivered[0]


def _best_of(fn, repeats=REPEATS):
    best_time, result = float("inf"), None
    for _ in range(repeats):
        elapsed, result = fn()
        best_time = min(best_time, elapsed)
    return best_time, result


def test_s1_hotloop_speedup():
    seed_time, seed_delivered = _best_of(_run_seed_hotloop)
    traced_time, traced_delivered = _best_of(lambda: _run_new_hotloop(True))
    dark_time, dark_delivered = _best_of(lambda: _run_new_hotloop(False))

    # Same work on every implementation.
    assert seed_delivered == traced_delivered == dark_delivered
    assert seed_delivered > 0

    seed_rate = seed_delivered / seed_time
    traced_rate = traced_delivered / traced_time
    dark_rate = dark_delivered / dark_time
    speedup = dark_rate / seed_rate
    print_table(
        f"S1: {HOTLOOP_NODES}-node broadcast storm, "
        f"{seed_delivered} deliveries over {HOTLOOP_SIM_SECONDS}s simulated",
        ("implementation", "seconds", "deliveries/sec", "speedup"),
        [
            ("seed (pre-PR, traced)", f"{seed_time:.3f}",
             f"{seed_rate:,.0f}", "1.0x"),
            ("reworked, traced", f"{traced_time:.3f}",
             f"{traced_rate:,.0f}", f"{traced_rate / seed_rate:.1f}x"),
            ("reworked, trace off", f"{dark_time:.3f}",
             f"{dark_rate:,.0f}", f"{speedup:.1f}x"),
        ],
    )
    record_metrics(
        "S1",
        hotloop_nodes=HOTLOOP_NODES,
        hotloop_deliveries=seed_delivered,
        seed_deliveries_per_sec=round(seed_rate),
        traced_deliveries_per_sec=round(traced_rate),
        events_per_sec=round(dark_rate),
        hotloop_speedup=round(speedup, 2),
        quick_mode=QUICK,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"hot-loop speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )


# ----------------------------------------------------------------------
# Scaling curve: world size vs events/sec and per-node memory
# ----------------------------------------------------------------------


def _view_cluster(n: int, seed: int = 2, rumor_count: int = 2) -> Cluster:
    import random as _random

    n_stubs, stub_size = SHAPES[n]
    topology = transit_stub(rng=_random.Random(seed), n_stubs=n_stubs,
                            stub_size=stub_size)
    config = GossipConfig(n=n, rumor_count=rumor_count, publish_interval=0.1)
    factory = make_view_gossip_factory(config, ViewConfig())
    cluster = Cluster(n, factory, topology=topology, seed=seed,
                      resolver_factory=lambda nid: RandomResolver(seed))
    cluster.sim.trace.enabled = False
    return cluster


def test_s1_world_size_curve():
    # REPRO_BENCH_STREAM=path streams the sweep live: one shared
    # RunStream across all world sizes, per-second sampler curves per
    # size plus an ``s1.world`` event as each data point lands — the
    # long 1k/4k builds stop being a silent 25 s gap.
    stream_path = os.environ.get("REPRO_BENCH_STREAM")
    run_stream = None
    if stream_path:
        from repro.obs import RunStream

        run_stream = RunStream(stream_path, kind="s1",
                               config={"sizes": list(CURVE_SIZES)})
    rows = []
    curve = {}
    for n in CURVE_SIZES:
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        cluster = _view_cluster(n)
        cluster.start_all()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_node_kib = (after - before) / n / 1024.0

        if run_stream is not None:
            from repro.obs import TelemetrySampler

            sampler = TelemetrySampler(cluster.sim, cadence=1.0,
                                       stream=run_stream)
            sampler.watch(f"n{n}.events",
                          lambda: cluster.sim.events_dispatched)
            sampler.watch(f"n{n}.messages",
                          lambda: cluster.network.messages_sent)
            sampler.start(until=5.0)
        start = time.perf_counter()
        dispatched = cluster.run(until=5.0)
        wall = time.perf_counter() - start
        events_per_sec = dispatched / wall
        rows.append((n, dispatched, f"{wall:.2f}",
                     f"{events_per_sec:,.0f}", f"{per_node_kib:.1f}"))
        curve[str(n)] = {
            "events": dispatched,
            "wall_seconds": round(wall, 3),
            "events_per_sec": round(events_per_sec),
            "per_node_kib": round(per_node_kib, 1),
        }
        if run_stream is not None:
            run_stream.write_event(
                "s1.world", t=float(n), nodes=n, **curve[str(n)],
            )
        # The overlay itself must be healthy at every size.
        assert all(svc.active for svc in cluster.services)

    if run_stream is not None:
        run_stream.write_summary(t=float(CURVE_SIZES[-1]), curve=curve)
    print_table(
        "S1: world-size scaling (ViewGossip over grouped transit-stub)",
        ("nodes", "events", "wall s", "events/sec", "KiB/node"),
        rows,
    )
    record_metrics("S1", world_size_curve=curve)
    if len(CURVE_SIZES) >= 3:
        # Per-node build memory must not balloon with world size: the
        # sparse topology + partial views keep it within a small factor
        # across a 256x node-count spread (full mode: 16 -> 4096).
        kibs = [curve[str(n)]["per_node_kib"] for n in CURVE_SIZES]
        assert max(kibs) <= max(8.0 * min(kibs), 64.0)


# ----------------------------------------------------------------------
# Safety at scale
# ----------------------------------------------------------------------


def test_s1_gossip_safe_at_scale():
    cluster = _view_cluster(SAFETY_N, seed=3, rumor_count=2)
    cluster.start_all()
    deadline = 60.0
    now = 0.0
    cov = 0.0
    while now < deadline:
        now = min(now + 10.0, deadline)
        cluster.run(until=now)
        cov = coverage(cluster.services, 2)
        if cov == 1.0:
            break
    record_metrics("S1", gossip_nodes=SAFETY_N, gossip_coverage=cov,
                   gossip_sim_seconds=now)
    assert cov == 1.0, f"coverage {cov} after {now} simulated seconds"


def test_s1_randtree_safe_at_scale():
    import random as _random

    n = SAFETY_N
    n_stubs, stub_size = SHAPES[128] if n == 128 else SHAPES[1000]
    topology = transit_stub(rng=_random.Random(4), n_stubs=n_stubs,
                            stub_size=stub_size)
    factory = make_view_randtree_factory(RandTreeConfig(), ViewConfig())
    cluster = Cluster(n, factory, topology=topology, seed=4,
                      resolver_factory=lambda nid: RandomResolver(4))
    cluster.sim.trace.enabled = False
    cluster.start_all()

    deadline = 120.0
    now = 0.0
    states = {}
    while now < deadline:
        now = min(now + 20.0, deadline)
        cluster.run(until=now)
        states = {s.node_id: s.checkpoint() for s in cluster.services}
        if not unattached_nodes(states, root=0):
            break

    unattached = unattached_nodes(states, root=0)
    assert unattached == set(), (
        f"{len(unattached)} nodes unattached after {now} simulated seconds"
    )
    for nid, state in states.items():
        assert no_self_loop(nid, state)
    items = sorted(states.items())
    for a, sa in items:
        for b, sb in items:
            if a < b:
                assert child_parent_consistent(a, sa, b, sb)
    depths = tree_depths(states, root=0)
    record_metrics("S1", randtree_nodes=n, randtree_sim_seconds=now,
                   randtree_max_depth=max(depths.values()))


# ----------------------------------------------------------------------
# Neighborhood-scoped prediction tick
# ----------------------------------------------------------------------


def test_s1_prediction_tick_subsecond():
    n = PREDICTION_N
    cluster = _view_cluster(n, seed=5, rumor_count=3)
    config = GossipConfig(n=n, rumor_count=3, publish_interval=0.1)
    factory = make_view_gossip_factory(config, ViewConfig())
    cluster.start_all()
    cluster.run(until=6.0)      # overlay converges before runtimes land

    # CrystalBall on node 0 and its neighborhood only — at 1k nodes an
    # every-node install is exactly the O(n^2) pattern views remove.
    runtime = CrystalBallRuntime(
        cluster.node(0), factory, checkpoint_period=0.5,
        prediction_period=0.0, prediction_scope="neighborhood",
        chain_depth=2, budget=400,
    )
    runtime.start()
    for peer in cluster.service(0).active:
        CrystalBallRuntime(
            cluster.node(peer), factory, checkpoint_period=0.5,
            prediction_period=0.0, prediction_scope="neighborhood",
        ).start()
    cluster.run(until=9.0)      # a few checkpoint rounds populate node 0

    start = time.perf_counter()
    report = runtime.run_prediction()
    tick_seconds = time.perf_counter() - start

    world = runtime.current_world()
    assert 1 < len(world.node_states) <= ViewConfig().active_size + 1
    record_metrics(
        "S1",
        prediction_nodes=n,
        prediction_world_states=len(world.node_states),
        prediction_states_explored=report.total_states,
        prediction_tick_seconds=round(tick_seconds, 4),
    )
    assert tick_seconds < 1.0, (
        f"neighborhood prediction tick took {tick_seconds:.2f}s at n={n}"
    )


# ----------------------------------------------------------------------
# Byte-identity with the seed: pinned digests
# ----------------------------------------------------------------------


def test_s1_gossip_trace_digest_pinned():
    config = GossipConfig(n=16, rumor_count=6, publish_interval=0.1)
    cluster = Cluster(16, make_exposed_gossip_factory(config), seed=1,
                      resolver_factory=lambda nid: RandomResolver(1))
    cluster.start_all()
    cluster.run(until=8.0)
    assert trace_digest(cluster.sim.trace) == SEED_GOSSIP_DIGEST


def test_s1_crystalball_trace_digest_pinned():
    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(16, factory, seed=1)
    install_crystalball(
        cluster, factory,
        objective=make_balance_objective(config),
        properties=randtree_properties(config),
        checkpoint_period=1.0, chain_depth=2, budget=400,
        prediction_period=0.0,
    )
    cluster.start_all()
    cluster.run(until=10.0)
    assert trace_digest(cluster.sim.trace) == SEED_TREE_DIGEST


def test_s1_prediction_report_digest_pinned():
    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(16, factory, seed=1,
                      resolver_factory=lambda nid: RandomResolver(1))
    cluster.start_all()
    cluster.run(until=20.0)
    world = world_from_services(cluster.services, cluster.nodes,
                                time=cluster.sim.now)
    explorer = Explorer(factory, properties=randtree_properties(config))
    predictor = ConsequencePredictor(explorer, chain_depth=3, budget=5_000)
    assert predictor.predict(world).digest() == SEED_PREDICTION_DIGEST
