"""T2 — amortized prediction-driven steering at T1 scale.

Not a paper figure: the ROADMAP item-2 follow-through.  T1 showed that
running full consequence prediction per exposed choice is hopeless at
10^5 offered requests and fell back to a *static* deployment-model
resolver.  T2 measures the amortized middle road: scored prediction
rounds distill :class:`~repro.runtime.SteeringPolicy` rankings that are
reused across every choice sharing a coarse scenario signature, with
coalescing and a deterministic states-rate budget keeping prediction
off the hot path.  Three modes over the same chaos plans:

* ``off`` — first candidate everywhere (the legacy unbatched replica);
* ``static`` — the T1 deployment-model resolver;
* ``amortized`` — prediction-driven steering through
  :class:`~repro.runtime.AmortizedSteering`.

The bar: amortized throughput must land within 2x of the static
resolver (it pays for real prediction rounds) while beating steering-
off by an order of magnitude in the full run — prediction-quality
steering at static-resolver cost.  Same-seed amortized runs must be
digest-identical (the budget is sim-state-driven, never wall-clock),
and the static mode must still reproduce the recorded T1 digest
byte-for-byte (amortized machinery off changes nothing).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.eval import run_throughput_experiment, standard_plans

from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 1
N = 5
TOTAL = 4_000 if QUICK else 100_000
HORIZON = 15.0 if QUICK else 60.0
PLANS = {p.name: p for p in standard_plans(N, HORIZON, amnesia=False)}
MODES = ("off", "static", "amortized")

# Thresholds: quick runs give the policy little time to learn, so the
# floors are looser there; the full run enforces the headline claim.
MIN_VS_STATIC = 0.5
MIN_VS_OFF = 3.0 if QUICK else 10.0

_RESULTS = {}
_WALL = {}


def _run(mode: str, plan_name: str, total=TOTAL, horizon=HORIZON, seed=SEED):
    key = (mode, plan_name, total, horizon, seed)
    if key not in _RESULTS:
        start = time.perf_counter()
        _RESULTS[key] = run_throughput_experiment(
            mode, seed=seed, total_requests=total, horizon=horizon,
            plan=PLANS[plan_name],
        )
        _WALL[key] = time.perf_counter() - start
    return _RESULTS[key]


def _score_wall(result) -> float:
    """Total wall seconds spent inside scored prediction rounds."""
    total = 0.0
    for section in result.metrics.get("nodes", {}).values():
        for name, span in (section.get("spans") or {}).items():
            if "runtime.policy_score" in name:
                total += span.get("total_s", 0.0)
    return total


@pytest.mark.parametrize("plan_name", ("message-chaos", "crash-recovery"))
def test_t2_amortized_beats_off_and_holds_static(benchmark, plan_name):
    """Amortized steering lands near static throughput and an order of
    magnitude over steering-off, with safety held throughout."""

    def sweep():
        return [_run(mode, plan_name) for mode in MODES]

    off, static, amortized = benchmark.pedantic(sweep, rounds=1, iterations=1)
    steering = amortized.metrics["steering"]
    counters = steering["counters"]
    resolutions = sum(counters.values())
    wall = _WALL[("amortized", plan_name, TOTAL, HORIZON, SEED)]
    score_wall = _score_wall(amortized)
    duty_cycle = score_wall / wall if wall else 0.0
    print_table(
        f"T2: steering modes under {plan_name} "
        f"({TOTAL:,} offered, {HORIZON:g}s horizon)",
        ("mode", "offered", "committed", "ops/s", "mean batch", "safe"),
        [
            (r.mode, f"{r.offered:,}", f"{r.committed:,}",
             f"{r.ops_per_sec:,.0f}", f"{r.mean_batch:.1f}", r.safe)
            for r in (off, static, amortized)
        ],
    )
    print_table(
        f"T2: amortization under {plan_name}",
        ("resolutions", "scored rounds", "policy hits", "coalesced",
         "fallbacks", "hit rate", "score wall", "duty cycle"),
        [(
            resolutions, counters["scored_rounds"], counters["policy_hits"],
            counters["coalesced"], counters["fallbacks"],
            f"{steering['policy']['hit_rate']:.0%}",
            f"{score_wall:.2f}s", f"{duty_cycle:.1%}",
        )],
    )
    for r in (off, static, amortized):
        assert r.safe, f"safety violated under {r.mode}"
        assert r.committed > 0
    # One prediction round, thousands of choices: scoring must be the
    # rare path, and the sum of answers must come from somewhere else.
    assert counters["scored_rounds"] >= 1, "no prediction round ever ran"
    assert counters["scored_rounds"] < resolutions / 2, (
        "scoring dominated: amortization is not amortizing"
    )
    assert steering["policy"]["installs"] >= 1
    assert amortized.ops_per_sec >= MIN_VS_STATIC * static.ops_per_sec, (
        f"amortized {amortized.ops_per_sec:.0f} ops/s fell below "
        f"{MIN_VS_STATIC}x static ({static.ops_per_sec:.0f})"
    )
    assert amortized.ops_per_sec >= MIN_VS_OFF * off.ops_per_sec, (
        f"amortized {amortized.ops_per_sec:.0f} ops/s is not "
        f"{MIN_VS_OFF}x steering-off ({off.ops_per_sec:.0f})"
    )
    record_metrics(
        "T2",
        **{
            f"{plan_name}.ops_per_sec_amortized": round(amortized.ops_per_sec, 1),
            f"{plan_name}.ops_per_sec_static": round(static.ops_per_sec, 1),
            f"{plan_name}.ops_per_sec_off": round(off.ops_per_sec, 1),
            f"{plan_name}.amortized_vs_off_speedup": round(
                amortized.ops_per_sec / max(off.ops_per_sec, 1e-9), 2),
            f"{plan_name}.amortized_vs_static": round(
                amortized.ops_per_sec / max(static.ops_per_sec, 1e-9), 3),
            f"{plan_name}.scored_rounds": counters["scored_rounds"],
            f"{plan_name}.resolutions": resolutions,
            f"{plan_name}.policy_hit_rate": round(
                steering["policy"]["hit_rate"], 3),
            f"{plan_name}.spent_states": steering["spent_states"],
            f"{plan_name}.score_wall_s": round(score_wall, 3),
        },
    )


def test_t2_campaign_config(benchmark):
    def materialize():
        for plan_name in ("message-chaos", "crash-recovery"):
            for mode in MODES:
                _run(mode, plan_name)
        return list(_RESULTS.values())

    results = benchmark.pedantic(materialize, rounds=1, iterations=1)
    assert all(r.safe for r in results)
    record_metrics(
        "T2",
        quick=QUICK,
        seed=SEED,
        horizon_s=HORIZON,
        total_requests_per_run=TOTAL,
        campaign_offered=sum(r.offered for r in results),
        campaign_committed=sum(r.committed for r in results),
    )


def test_t2_amortized_seed_reproducibility(benchmark):
    """Same (seed, configuration) → identical digests in amortized mode.

    This is the determinism claim doing real work: the scheduler's
    budget is predicted-states-per-sim-second, so whether a choice was
    scored, answered from policy, or fell back is a pure function of
    simulation state — never of host speed."""
    total, horizon = 1_500, 10.0

    def run_twice():
        runs = []
        for _ in range(2):
            runs.append(run_throughput_experiment(
                "amortized", seed=7, total_requests=total, horizon=horizon,
                plan=standard_plans(N, horizon, amnesia=False)[0],
            ))
        return runs

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    print_table(
        "T2: amortized replay determinism",
        ("run", "state digest", "committed", "scored rounds"),
        [(name, r.state_digest, r.committed,
          r.metrics["steering"]["counters"]["scored_rounds"])
         for name, r in (("first", first), ("second", second))],
    )
    assert first.state_digest == second.state_digest
    assert first.committed == second.committed
    assert (first.metrics["steering"]["counters"]
            == second.metrics["steering"]["counters"])
    record_metrics("T2", repro_digest=first.state_digest)


def test_t2_static_mode_reproduces_t1_digest(benchmark):
    """Amortized-off is a no-op: the static mode still produces the T1
    digest recorded in BENCH_T1.json, byte for byte."""
    baseline_path = Path(__file__).resolve().parents[1] / "BENCH_T1.json"
    if not baseline_path.exists():
        pytest.skip("no BENCH_T1.json baseline recorded")
    baseline = json.loads(baseline_path.read_text())
    expected = baseline.get("metrics", {}).get("repro_digest")
    if not expected:
        pytest.skip("BENCH_T1.json has no repro_digest")
    total, horizon = 1_500, 10.0

    def run_static():
        return run_throughput_experiment(
            "static", seed=7, total_requests=total, horizon=horizon,
            plan=standard_plans(N, horizon, amnesia=False)[0],
        )

    result = benchmark.pedantic(run_static, rounds=1, iterations=1)
    print_table(
        "T2: static mode vs recorded T1 digest",
        ("source", "digest"),
        [("BENCH_T1.json", expected), ("static run", result.state_digest)],
    )
    assert result.state_digest == expected, (
        "static mode no longer reproduces the recorded T1 digest — the "
        "amortized machinery is not digest-neutral when off"
    )
    record_metrics("T2", t1_digest_match=True)
