"""E4 — Section 3.1 gossip example (extension experiment).

Paper claim being tested: restricting peer choice BAR-style is robust
but "the performance might suffer if, e.g., the only target is behind a
slow network connection", and the follow-on FlightPath work relaxed the
choice for performance.  We stream rumors over a heterogeneous topology
(25% of nodes behind slow links) and measure mean per-rumor delivery
latency.

Shape: free choice (random or model-resolved) beats the BAR-restricted
schedule; the model-based exposed choice tracks the best policy.
"""

import statistics

from repro.eval import GOSSIP_VARIANTS, run_gossip_experiment

from conftest import print_table

SEEDS = (1, 2, 3, 4)


def run_all():
    out = {}
    for variant in GOSSIP_VARIANTS:
        latencies = []
        messages = []
        for seed in SEEDS:
            result = run_gossip_experiment(variant, seed=seed)
            assert result.coverage == 1.0
            latencies.append(result.mean_latency)
            messages.append(result.app_messages)
        out[variant] = (statistics.mean(latencies), statistics.mean(messages))
    return out


def test_e4_gossip_peer_choice(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (variant, f"{lat * 1000:.0f} ms", f"{msgs:.0f}")
        for variant, (lat, msgs) in results.items()
    ]
    print_table(
        "E4: streaming gossip, mean delivery latency (heterogeneous links)",
        ("variant", "mean latency", "app messages"),
        rows,
    )
    bar = results["baseline-bar"][0]
    free_random = results["baseline-random"][0]
    model = results["choice-model"][0]
    # Restricted choice pays a latency penalty vs free random choice...
    assert bar > free_random
    # ...and the exposed model-based choice recovers (tracks the best).
    assert model < bar
