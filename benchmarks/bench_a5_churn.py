"""A5 — extension: robustness under continuous churn.

The paper's thesis sentence promises "increased performance and
robustness to various deployment settings".  E3 tests one catastrophic
failure; this experiment applies *continuous* churn (a random node
crashes every 2.5 s and rejoins 4 s later, for 40 s) and scores the
time-averaged tree quality — the regime where hard-coded policies
typically rot, because the system never reaches the steady state they
were tuned for.

Shape: Choice-CrystalBall maintains the shallowest time-averaged tree;
Baseline and Choice-Random are comparable to each other.
"""

import statistics

from repro.eval import run_churn_experiment

from conftest import print_table

SEEDS = (1, 2, 3)
VARIANTS = ("baseline", "choice-random", "choice-crystalball")


def run_all():
    results = {}
    for variant in VARIANTS:
        outcomes = [run_churn_experiment(variant, seed=seed) for seed in SEEDS]
        results[variant] = outcomes
    return results


def test_a5_continuous_churn(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for variant, outcomes in results.items():
        rows.append((
            variant,
            f"{statistics.mean(o.mean_depth for o in outcomes):.2f}",
            max(o.max_depth for o in outcomes),
            f"{statistics.mean(o.mean_attached_fraction for o in outcomes):.0%}",
        ))
    print_table(
        "A5: time-averaged tree quality under continuous churn",
        ("variant", "mean depth", "worst depth", "attached"),
        rows,
    )
    mean_of = {
        v: statistics.mean(o.mean_depth for o in outcomes)
        for v, outcomes in results.items()
    }
    assert mean_of["choice-crystalball"] < mean_of["baseline"]
    assert mean_of["choice-crystalball"] < mean_of["choice-random"]
    # Churn must actually be happening and the tree still mostly holds.
    for outcomes in results.values():
        for outcome in outcomes:
            assert outcome.churn_events >= 10
            assert outcome.mean_attached_fraction > 0.8
