"""E6 — Section 3.1 consensus example (extension experiment).

Paper: Paxos "does not offer a choice as to which node is allowed to
propose a new value, and can suffer from reduced performance due to CPU
overload or network congestion.  A recent improvement [Mencius]
achieves significant performance gains across wide-area networks by
allowing every node to propose according to a round-robin schedule.  We
argue that an implementation can expose the choice of a proposer and
let the runtime pick the best proposer."

Five replicas over a three-region WAN with a loaded fixed leader and a
loaded, poorly-connected edge replica.  Shape: fixed-leader suffers
badly; Mencius recovers; the exposed choice is at least as good as
Mencius (it routes around loaded/slow proposers).
"""

from repro.eval import PAXOS_VARIANTS, run_paxos_experiment

from conftest import print_table

SEED = 1
REQUESTS = 10


def run_all():
    return {
        variant: run_paxos_experiment(variant, seed=SEED, requests_per_node=REQUESTS)
        for variant in PAXOS_VARIANTS
    }


def test_e6_proposer_choice(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for variant, result in results.items():
        assert result.committed == result.expected
        rows.append((
            variant,
            f"{result.mean_latency * 1000:.0f} ms",
            f"{result.p99_latency * 1000:.0f} ms",
            f"{result.committed}/{result.expected}",
        ))
    print_table(
        "E6: commit latency by proposer policy (WAN + CPU load)",
        ("variant", "mean", "p99", "committed"),
        rows,
    )
    fixed = results["fixed"].mean_latency
    mencius = results["mencius"].mean_latency
    choice = results["choice"].mean_latency
    assert fixed > 1.5 * mencius      # fixed leader collapses under load
    assert choice <= mencius          # exposed choice at least matches Mencius
