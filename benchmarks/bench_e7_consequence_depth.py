"""E7 — Section 2 consequence-prediction speed claim.

Paper: "Consequence prediction focuses on exploring causally related
chains of events, and is fast enough to look several levels of state
space into the future fairly quickly (e.g., in 10 seconds) on today's
hardware."

Two measurements on a live 31-node RandTree snapshot:

1. chain depth vs states explored vs wall time — several levels of
   lookahead must complete in (well under) 10 seconds;
2. the ablation behind the design: consequence prediction (causal
   chains) vs plain bounded BFS at equal depth — chains must explore
   far fewer states for the same horizon.
"""

import time

from repro.apps.randtree import (
    RandTreeConfig,
    make_exposed_factory,
    randtree_properties,
)
from repro.choice.resolvers import RandomResolver
from repro.mc import ConsequencePredictor, Explorer, world_from_services
from repro.statemachine import Cluster

from conftest import print_table

PAPER_BUDGET_SECONDS = 10.0


def build_snapshot(n=31, seed=1):
    """A settled 31-node tree, its pending timers, and one in-flight
    join request (so exploration has a deep causal cascade to follow:
    the join forwards level by level down the tree)."""
    from repro.apps.randtree import Join
    from repro.mc import InFlightMessage

    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(n, factory, seed=seed,
                      resolver_factory=lambda nid: RandomResolver(seed))
    cluster.start_all()
    cluster.run(until=20.0)
    world = world_from_services(cluster.services, cluster.nodes, time=cluster.sim.now)
    world.inflight.append(InFlightMessage(5, 0, Join(joiner=5)))
    return factory, world, config


def test_e7_depth_vs_states(benchmark):
    factory, world, config = build_snapshot()
    explorer = Explorer(factory, properties=randtree_properties(config))

    def sweep():
        rows = []
        for depth in (1, 2, 3, 4, 5, 6):
            predictor = ConsequencePredictor(explorer, chain_depth=depth,
                                             budget=50_000)
            start = time.perf_counter()
            report = predictor.predict(world)
            elapsed = time.perf_counter() - start
            rows.append((depth, report.total_states, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E7: consequence prediction depth vs states vs wall time",
        ("chain depth", "states", "seconds"),
        [(d, s, f"{t:.3f}") for d, s, t in rows],
    )
    # States grow with depth; even the deepest sweep finishes well
    # inside the paper's 10-second budget.
    states = [s for _, s, _ in rows]
    assert states == sorted(states)
    assert all(t < PAPER_BUDGET_SECONDS for _, _, t in rows)
    assert rows[-1][0] >= 5  # "several levels into the future"


def test_e7_chains_vs_bfs_ablation(benchmark):
    factory, world, config = build_snapshot()
    explorer = Explorer(factory, properties=randtree_properties(config))
    depth = 3

    def compare():
        predictor = ConsequencePredictor(explorer, chain_depth=depth, budget=50_000)
        chain_start = time.perf_counter()
        report = predictor.predict(world)
        chain_time = time.perf_counter() - chain_start
        bfs_start = time.perf_counter()
        bfs = explorer.bfs(world, max_depth=depth, max_states=20_000)
        bfs_time = time.perf_counter() - bfs_start
        return report.total_states, chain_time, bfs.states_explored, bfs_time, bfs.truncated

    chain_states, chain_time, bfs_states, bfs_time, truncated = benchmark.pedantic(
        compare, rounds=1, iterations=1,
    )
    print_table(
        f"E7 ablation: causal chains vs full BFS at depth {depth}",
        ("strategy", "states", "seconds"),
        [
            ("consequence prediction", chain_states, f"{chain_time:.3f}"),
            ("bounded BFS" + (" (truncated)" if truncated else ""),
             bfs_states, f"{bfs_time:.3f}"),
        ],
    )
    # The whole point of consequence prediction: far fewer states for
    # the same lookahead horizon.
    assert chain_states * 5 < bfs_states
