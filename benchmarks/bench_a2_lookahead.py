"""A2 — ablation: how much lookahead does choice quality need?

Section 3.4 asks how to resolve choices "fast enough ... without
substantially slowing down the system".  This ablation sweeps the
consequence-prediction chain depth used by the Choice-CrystalBall
RandTree and reports both result quality (rejoin depth) and cost
(wall-clock for the whole scenario).

Expected shape: depth 1 (myopic: the join is still in flight at the
horizon, so candidates are nearly indistinguishable) underperforms;
moderate depths reach full quality; beyond that only cost grows.
Also sweeps the exploration budget at fixed depth.
"""

import statistics
import time

from repro.eval import run_tree_experiment

from conftest import print_table

SEEDS = (1, 4)


def run_sweep():
    rows = []
    for chain_depth in (1, 3, 6, 9):
        depths = []
        start = time.perf_counter()
        for seed in SEEDS:
            result = run_tree_experiment(
                "choice-crystalball", seed=seed, chain_depth=chain_depth,
            )
            depths.append(result.depth_after_rejoin)
        elapsed = time.perf_counter() - start
        rows.append(("chain depth", chain_depth, statistics.mean(depths), elapsed))
    for budget in (30, 250):
        depths = []
        start = time.perf_counter()
        for seed in SEEDS:
            result = run_tree_experiment(
                "choice-crystalball", seed=seed, chain_depth=6, budget=budget,
            )
            depths.append(result.depth_after_rejoin)
        elapsed = time.perf_counter() - start
        rows.append(("budget", budget, statistics.mean(depths), elapsed))
    return rows


def test_a2_lookahead_depth_and_budget(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "A2: lookahead depth/budget vs rejoin quality and cost",
        ("knob", "value", "mean rejoin depth", "wall seconds"),
        [(k, v, f"{d:.1f}", f"{t:.1f}") for k, v, d, t in rows],
    )
    by_knob = {(k, v): d for k, v, d, _ in rows}
    # Full-quality configurations must not be worse than the myopic one.
    assert by_knob[("chain depth", 6)] <= by_knob[("chain depth", 1)]
    # Deeper than needed must not degrade quality.
    assert by_knob[("chain depth", 9)] <= by_knob[("chain depth", 3)] + 0.51
