"""P2 — cross-round incremental prediction and delta checkpoints.

The steady-state cost the paper's deployment model implies: the
controller re-predicts every ``prediction_period`` from a world that is
usually *almost identical* to the previous round's.  The
:class:`~repro.mc.ChainMemo` caches each initial action's explored
chain keyed by its causal footprint, so unchanged chains are rebased
instead of re-explored; :class:`~repro.runtime.CrystalBallRuntime`
pairs it with ack-anchored delta checkpoints so the state model keeps
fresh without re-shipping full state every period.

Three measurements:

* steady state — N identical-content rounds on the P1 16-node world;
  memo-on must produce byte-identical ``PredictionReport``s (equal
  ``report.digest()``) to memo-off every round and be >= 2x faster per
  round once warm;
* churn — the world mutates between rounds (a rotating in-flight
  message swap, periodic liveness flips): byte-identity must hold
  through partial hits and full invalidations alike;
* delta checkpoints — a big-blob service cluster with
  ``checkpoint_deltas`` on vs off: bytes on the wire must shrink.

Results land in ``BENCH_P2.json``.
"""

import os
import statistics
import time

from repro.apps.randtree import Join, randtree_properties
from repro.mc import (
    ChainMemo,
    ConsequencePredictor,
    Explorer,
    InFlightMessage,
    PendingTimer,
    WorldState,
)
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Service, timer_handler
from repro.statemachine.serialization import snapshot_value

from bench_p1_hotpath import CHAIN_DEPTH, N_NODES, build_snapshot
from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

BUDGET = 50_000
ROUNDS = 6 if QUICK else 12
MIN_STEADY_SPEEDUP = 2.0


def fresh_world(template):
    """A brand-new :class:`WorldState` with the template's content.

    Fresh state dicts and fresh message/timer objects, exactly as
    ``world_from_services`` would hand the controller each round: no
    digest or footprint caches survive from previous rounds, so the
    memo must prove reuse from content alone.
    """
    return WorldState(
        node_states={nid: snapshot_value(s) for nid, s in template.node_states.items()},
        inflight=[InFlightMessage(m.src, m.dst, m.msg) for m in template.inflight],
        timers=[
            PendingTimer(t.node, t.name, t.payload, t.delay) for t in template.timers
        ],
        down=set(template.down),
        time=template.time,
        depth=template.depth,
        copy_states=False,
    )


def make_predictor(factory, config, memo):
    explorer = Explorer(factory, properties=randtree_properties(config))
    return ConsequencePredictor(
        explorer, chain_depth=CHAIN_DEPTH, budget=BUDGET, memo=memo,
    )


def test_p2_steady_state_speedup():
    """Identical worlds round after round: warm rounds are all hits."""
    factory, template, config = build_snapshot()
    memo = ChainMemo()
    on = make_predictor(factory, config, memo)
    off = make_predictor(factory, config, None)

    on_times, off_times = [], []
    hits = misses = 0
    for _ in range(ROUNDS):
        world_off = fresh_world(template)
        start = time.perf_counter()
        report_off = off.predict(world_off)
        off_times.append(time.perf_counter() - start)

        world_on = fresh_world(template)
        start = time.perf_counter()
        report_on = on.predict(world_on)
        on_times.append(time.perf_counter() - start)

        assert report_on.digest() == report_off.digest()
        hits += report_on.memo_hits
        misses += report_on.memo_misses

    # Round 0 is the warmup (all misses, plus store overhead); the
    # steady state is every round after it.
    warm_on = statistics.median(on_times[1:])
    warm_off = statistics.median(off_times[1:])
    speedup = warm_off / warm_on
    actions = len(report_on.outcomes)
    # After warmup every chain is a hit.
    assert report_on.memo_hits == actions
    assert report_on.memo_misses == 0
    assert memo.snapshot()["rebase_errors"] == 0

    print_table(
        f"P2: steady-state prediction, {N_NODES}-node world x {ROUNDS} rounds "
        f"({report_on.total_states} states, {actions} chains/round)",
        ("mode", "warm s/round", "speedup", "hit rate"),
        [
            ("memo off", f"{warm_off:.4f}", "1.0x", "-"),
            ("memo on", f"{warm_on:.4f}", f"{speedup:.1f}x",
             f"{hits}/{hits + misses}"),
        ],
    )
    record_metrics(
        "P2",
        nodes=N_NODES,
        chain_depth=CHAIN_DEPTH,
        rounds=ROUNDS,
        states_per_round=report_on.total_states,
        chains_per_round=actions,
        steady_off_seconds=round(warm_off, 5),
        steady_on_seconds=round(warm_on, 5),
        steady_speedup=round(speedup, 2),
        steady_hit_rate=round(hits / (hits + misses), 4),
        reports_identical=True,
        quick_mode=QUICK,
    )
    assert speedup >= MIN_STEADY_SPEEDUP, (
        f"steady-state speedup {speedup:.2f}x below the "
        f"{MIN_STEADY_SPEEDUP}x floor"
    )


def test_p2_churn_rounds_stay_byte_identical():
    """Mutating worlds between rounds: hits where footprints allow,
    re-exploration where they don't, identical reports either way."""
    factory, template, config = build_snapshot()
    heartbeats = [
        i for i, m in enumerate(template.inflight)
        if type(m.msg).__name__ == "Heartbeat"
    ]
    memo = ChainMemo()
    on = make_predictor(factory, config, memo)
    off = make_predictor(factory, config, None)

    per_round = []
    for r in range(ROUNDS):
        world = fresh_world(template)
        # Rotating message churn: one heartbeat becomes a Join from the
        # same sender — that chain re-explores, the rest can hit.
        idx = heartbeats[r % len(heartbeats)]
        old = world.inflight[idx]
        world.inflight[idx] = InFlightMessage(old.src, old.dst, Join(joiner=old.src))
        # Periodic liveness flip: ``down`` is in every footprint value,
        # so these rounds are full re-explorations.
        if r % 4 == 2:
            world.down = {max(world.node_ids)}

        report_off = off.predict(fresh_world(world))
        report_on = on.predict(fresh_world(world))
        assert report_on.digest() == report_off.digest()
        total = report_on.memo_hits + report_on.memo_misses
        per_round.append((r, report_on.memo_hits, total))

    warm = per_round[1:]
    hit_rate = sum(h for _, h, _ in warm) / sum(t for _, _, t in warm)
    print_table(
        f"P2: churn rounds (rotating message swap, liveness flips)",
        ("round", "hits", "chains"),
        [(r, h, t) for r, h, t in per_round],
    )
    record_metrics(
        "P2",
        churn_rounds=ROUNDS,
        churn_hit_rate=round(hit_rate, 4),
        churn_reports_identical=True,
        memo=memo.snapshot(),
    )
    # Partial reuse actually happened (not all-hit, not all-miss).
    assert 0.0 < hit_rate < 1.0
    assert memo.snapshot()["rebase_errors"] == 0


class BigStateService(Service):
    """Mostly-stable state with one hot counter: the delta sweet spot."""

    state_fields = ("blob", "counter")

    def __init__(self, node_id):
        super().__init__(node_id)
        self.blob = {f"entry{i}": list(range(16)) for i in range(120)}
        self.counter = 0

    def on_init(self):
        self.set_timer("bump", 0.4)

    @timer_handler("bump")
    def on_bump(self, payload):
        self.counter += 1
        self.set_timer("bump", 0.4)


def test_p2_delta_checkpoints_cut_bytes():
    horizon = 8.0 if QUICK else 16.0

    def run(deltas):
        cluster = Cluster(4, BigStateService, seed=5)
        runtimes = install_crystalball(
            cluster, BigStateService, checkpoint_period=0.5,
            checkpoint_deltas=deltas, full_checkpoint_every=5,
        )
        cluster.start_all()
        cluster.run(until=horizon)
        stats = {
            key: sum(r.stats[key] for r in runtimes)
            for key in (
                "checkpoint_bytes_sent", "checkpoints_sent",
                "delta_checkpoints_sent", "full_checkpoints_sent",
                "resync_fulls_sent", "checkpoint_acks_sent",
            )
        }
        # Models converged identically either way.
        states = {
            (r.node.node_id, peer): r.state_model.get(peer).state["counter"]
            for r in runtimes for peer in r.state_model.known_nodes()
        }
        return stats, states

    delta_stats, delta_states = run(True)
    full_stats, full_states = run(False)
    assert delta_states == full_states
    reduction = full_stats["checkpoint_bytes_sent"] / delta_stats["checkpoint_bytes_sent"]

    print_table(
        "P2: checkpoint bytes on the wire (4-node big-blob cluster)",
        ("mode", "bytes", "fulls", "deltas", "resyncs", "acks"),
        [
            ("full every period", full_stats["checkpoint_bytes_sent"],
             full_stats["checkpoints_sent"], 0, 0, 0),
            ("ack-anchored deltas", delta_stats["checkpoint_bytes_sent"],
             delta_stats["full_checkpoints_sent"],
             delta_stats["delta_checkpoints_sent"],
             delta_stats["resync_fulls_sent"],
             delta_stats["checkpoint_acks_sent"]),
        ],
    )
    record_metrics(
        "P2",
        checkpoint_bytes_full=full_stats["checkpoint_bytes_sent"],
        checkpoint_bytes_delta=delta_stats["checkpoint_bytes_sent"],
        delta_bytes_reduction=round(reduction, 2),
    )
    assert reduction >= 2.0, (
        f"delta checkpoints cut bytes only {reduction:.2f}x (floor 2.0x)"
    )
