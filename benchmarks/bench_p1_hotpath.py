"""P1 — the prediction hot path: incremental digests, service pooling,
and the parallel consequence predictor.

The paper's pitch is that consequence prediction "is fast enough to
look several levels of state space into the future fairly quickly"
(Section 2).  This bench measures the end-to-end prediction pipeline
(depth-4 consequence prediction over a 16-node snapshot, then digesting
every leaf world for visited-state/steering dedup) against a faithful
re-creation of the seed implementation:

* ``SeedExplorer`` — no service pool, one ``factory() + restore()``
  per in-flight message in ``enabled_actions``, every enumeration a
  full scan (no causal-frontier filter), every checkpoint snapshotted
  into its successor world;
* ``SeedPredictor`` — the seed chain exploration, re-freezing message
  and timer payloads on every causal-frontier operation;
* ``seed_randtree_properties`` — the seed property set: full O(n^2)
  pairwise and O(n) per-node rescans in every visited state;
* ``seed_digest`` — the seed world digest: a full ``freeze`` of every
  node state on every call, events sorted by ``repr``.

The baseline is *conservative*: it still rides the memoized
``InFlightMessage.key()`` inside ``evolve()``'s removal scan, so the
true seed was slower than what we compare against.

Asserts the optimized serial and parallel (``workers>1``) predictors
produce byte-identical reports (violations, states, leaf-world
digests) and that the optimized pipeline is >= 3x faster (>= 2x in
quick mode, for noisy CI runners).  Results land in ``BENCH_P1.json``.
"""

import os
import time
from collections import Counter

from repro.apps.randtree import (
    Heartbeat,
    Join,
    RandTreeConfig,
    make_exposed_factory,
    randtree_properties,
)
from repro.choice.resolvers import RandomResolver
from repro.mc import (
    ConsequencePredictor,
    DeliverAction,
    DropAction,
    Explorer,
    InFlightMessage,
    InjectAction,
    TimerAction,
    Violation,
    world_from_services,
)
from repro.apps.randtree.common import child_parent_consistent
from repro.mc.properties import SafetyProperty
from repro.mc.world import digest_of_frozen
from repro.statemachine import Cluster
from repro.statemachine.serialization import freeze, snapshot_value

from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

N_NODES = 16
CHAIN_DEPTH = 4
BUDGET = 50_000
N_JOINERS = 5
REPEATS = 3 if QUICK else 5
MIN_SPEEDUP = 2.0 if QUICK else 3.0


# ----------------------------------------------------------------------
# Seed (pre-PR) implementation, re-created for an honest baseline
# ----------------------------------------------------------------------

def _seed_message_key(message):
    return (message.src, message.dst, freeze(message.msg))


def _seed_timer_key(timer):
    return (timer.node, timer.name, freeze(timer.payload))


def seed_digest(world) -> str:
    """The seed world digest: full freeze of everything, repr-sorted."""
    states = tuple(
        (nid, freeze(world.node_states[nid])) for nid in sorted(world.node_states)
    )
    messages = tuple(sorted((_seed_message_key(m) for m in world.inflight), key=repr))
    timers = tuple(sorted((_seed_timer_key(t) for t in world.timers), key=repr))
    return digest_of_frozen((states, messages, timers, tuple(sorted(world.down))))


def _seed_created_event_keys(before, after):
    before_msgs = Counter(_seed_message_key(m) for m in before.inflight)
    after_msgs = Counter(_seed_message_key(m) for m in after.inflight)
    created = set((after_msgs - before_msgs).keys())
    before_timers = {_seed_timer_key(t) for t in before.timers}
    for timer in after.timers:
        if _seed_timer_key(timer) not in before_timers:
            created.add(_seed_timer_key(timer))
    return created


def _seed_consumed_event_key(action):
    if isinstance(action, (DeliverAction, DropAction)):
        return (action.src, action.dst, freeze(action.msg))
    if isinstance(action, TimerAction):
        return (action.node, action.name, freeze(action.payload))
    return None


def seed_randtree_properties(config):
    """The pre-PR RandTree property set: a full O(n^2) pairwise rescan
    and full per-node scans in every visited state, no verdict caching."""

    def pairwise_check(world):
        live = world.live_nodes()
        for a in live:
            for b in live:
                if a == b:
                    continue
                if not child_parent_consistent(
                    a, world.state_of(a), b, world.state_of(b)
                ):
                    return False
        return True

    def degree_bound(world):
        return all(
            len(world.state_of(nid).get("children", [])) <= config.max_children
            for nid in world.live_nodes()
        )

    def no_self_loops(world):
        for nid in world.live_nodes():
            state = world.state_of(nid)
            if state.get("parent") == nid or nid in state.get("children", []):
                return False
        return True

    return [
        SafetyProperty(name="child-parent-consistency", predicate=pairwise_check),
        SafetyProperty(name="degree-bound", predicate=degree_bound),
        SafetyProperty(name="no-self-loops", predicate=no_self_loops),
    ]


class SeedExplorer(Explorer):
    """Seed materialization: factory + restore once per message."""

    def __init__(self, *args, **kwargs):
        kwargs["service_pooling"] = False
        super().__init__(*args, **kwargs)

    def _build_successor(self, world, node_id, checkpoint, effects, **kwargs):
        # The seed snapshotted the checkpoint into the successor world
        # (one more deep copy than the optimized adopt-as-is path).
        return super()._build_successor(
            world, node_id, snapshot_value(checkpoint), effects, **kwargs
        )

    def enabled_actions(self, world):
        actions = []
        seen_messages = set()
        for message in world.inflight:
            key = _seed_message_key(message)
            if key in seen_messages:
                continue
            seen_messages.add(key)
            if not world.is_up(message.dst) or message.dst not in world.node_states:
                continue
            service = self.materialize(world, message.dst)
            for spec in service.applicable_handlers(message.src, message.msg):
                actions.append(
                    DeliverAction(src=message.src, dst=message.dst,
                                  msg=message.msg, handler=spec.name)
                )
        for timer in world.timers:
            if world.is_up(timer.node) and timer.node in world.node_states:
                actions.append(
                    TimerAction(node=timer.node, name=timer.name, payload=timer.payload)
                )
        if self.include_drops:
            seen_messages.clear()
            for message in world.inflight:
                key = _seed_message_key(message)
                if key in seen_messages:
                    continue
                seen_messages.add(key)
                actions.append(
                    DropAction(src=message.src, dst=message.dst, msg=message.msg)
                )
        if self.generic_node is not None:
            for src, dst, msg in self.generic_node.possible_messages(world.live_nodes()):
                actions.append(InjectAction(src=src, dst=dst, msg=msg))
        return actions


class SeedPredictor:
    """The seed ConsequencePredictor, verbatim control flow."""

    def __init__(self, explorer, chain_depth=4, budget=2_000):
        self.explorer = explorer
        self.chain_depth = chain_depth
        self.budget = budget

    def predict(self, world):
        from repro.mc import PredictionReport

        report = PredictionReport()
        for action in self.explorer.enabled_actions(world):
            remaining = self.budget - report.total_states
            if remaining <= 0:
                report.budget_exhausted = True
                break
            outcome = self._explore_chain(world, action, remaining)
            report.outcomes.append(outcome)
            report.total_states += outcome.states
        return report

    def _explore_chain(self, root, action, budget):
        from repro.mc import ActionOutcome

        outcome = ActionOutcome(action=action)
        stack = []
        for successor in self.explorer.successors(root, action):
            outcome.states += 1
            path = (action,)
            for name in self.explorer.check(successor):
                outcome.violations.append(
                    Violation(property_name=name, path=path, world=successor)
                )
            frontier = _seed_created_event_keys(root, successor)
            stack.append((successor, frontier, path, 1))
        while stack:
            if outcome.states >= budget:
                break
            world, frontier, path, depth = stack.pop()
            if depth >= self.chain_depth or not frontier:
                outcome.leaf_worlds.append(world)
                continue
            causal_actions = [
                a for a in self.explorer.enabled_actions(world)
                if _seed_consumed_event_key(a) in frontier
            ]
            if not causal_actions:
                outcome.leaf_worlds.append(world)
                continue
            for causal in causal_actions:
                consumed = _seed_consumed_event_key(causal)
                for successor in self.explorer.successors(world, causal):
                    outcome.states += 1
                    new_path = path + (causal,)
                    for name in self.explorer.check(successor):
                        outcome.violations.append(
                            Violation(property_name=name, path=new_path, world=successor)
                        )
                    new_frontier = (frontier - {consumed}) | _seed_created_event_keys(
                        world, successor
                    )
                    stack.append((successor, new_frontier, new_path, depth + 1))
        return outcome


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------

def build_snapshot(n=N_NODES, seed=1):
    """A settled n-node tree with a burst of concurrent re-joins in
    flight — each join cascades level by level, giving depth-4 chains —
    plus the steady-state heartbeat traffic a live tree always carries
    (every joined child has a beacon to its parent in flight)."""
    config = RandTreeConfig()
    factory = make_exposed_factory(config)
    cluster = Cluster(n, factory, seed=seed,
                      resolver_factory=lambda nid: RandomResolver(seed))
    cluster.start_all()
    cluster.run(until=20.0)
    world = world_from_services(cluster.services, cluster.nodes, time=cluster.sim.now)
    for joiner in range(3, 3 + N_JOINERS):
        world.inflight.append(InFlightMessage(joiner, 0, Join(joiner=joiner)))
    for nid in world.node_ids:
        state = world.state_of(nid)
        parent = state.get("parent")
        if state.get("joined") and parent is not None and parent != nid:
            world.inflight.append(InFlightMessage(nid, parent, Heartbeat()))
    return factory, world, config


def _violation_signature(report):
    return sorted(
        (v.property_name, tuple(a.key() for a in v.path))
        for o in report.outcomes for v in o.violations
    )


def _leaf_digests(report):
    return sorted(w.digest() for o in report.outcomes for w in o.leaf_worlds)


def _timed(fn, repeats=REPEATS):
    """Best-of-N wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_p1_prediction_pipeline_speedup():
    factory, world, config = build_snapshot()
    properties = randtree_properties(config)

    def seed_pipeline():
        explorer = SeedExplorer(factory, properties=seed_randtree_properties(config))
        predictor = SeedPredictor(explorer, chain_depth=CHAIN_DEPTH, budget=BUDGET)
        report = predictor.predict(world)
        digests = sorted(
            seed_digest(w) for o in report.outcomes for w in o.leaf_worlds
        )
        return report, digests

    def fast_pipeline(workers=1):
        explorer = Explorer(factory, properties=properties)
        predictor = ConsequencePredictor(
            explorer, chain_depth=CHAIN_DEPTH, budget=BUDGET, workers=workers,
        )
        world.digest()  # warm the root's per-node digest cache
        report = predictor.predict(world)
        digests = _leaf_digests(report)
        return report, digests

    seed_time, (seed_report, _) = _timed(seed_pipeline)
    serial_time, (serial_report, serial_digests) = _timed(fast_pipeline)
    parallel_time, (parallel_report, parallel_digests) = _timed(
        lambda: fast_pipeline(workers=4)
    )

    # Identical exploration results across all three implementations.
    assert seed_report.total_states == serial_report.total_states
    assert _violation_signature(seed_report) == _violation_signature(serial_report)
    assert _leaf_digests(seed_report) == serial_digests
    # Serial and parallel modes agree byte-for-byte.
    assert parallel_report.total_states == serial_report.total_states
    assert _violation_signature(parallel_report) == _violation_signature(serial_report)
    assert parallel_digests == serial_digests
    assert [o.action.key() for o in parallel_report.outcomes] == \
        [o.action.key() for o in serial_report.outcomes]

    speedup = seed_time / serial_time
    print_table(
        f"P1: depth-{CHAIN_DEPTH} prediction pipeline, {N_NODES}-node world "
        f"({serial_report.total_states} states)",
        ("implementation", "seconds", "speedup"),
        [
            ("seed (pre-PR)", f"{seed_time:.3f}", "1.0x"),
            ("incremental+pooled", f"{serial_time:.3f}", f"{speedup:.1f}x"),
            ("parallel (workers=4)", f"{parallel_time:.3f}",
             f"{seed_time / parallel_time:.1f}x"),
        ],
    )
    record_metrics(
        "P1",
        nodes=N_NODES,
        chain_depth=CHAIN_DEPTH,
        states=serial_report.total_states,
        violations=len(_violation_signature(serial_report)),
        seed_seconds=round(seed_time, 4),
        serial_seconds=round(serial_time, 4),
        parallel_seconds=round(parallel_time, 4),
        speedup=round(speedup, 2),
        quick_mode=QUICK,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"hot-path speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )


def test_p1_incremental_digest_matches_and_wins():
    """Incremental digests agree with full recomputation and beat the
    seed digest on an evolve-heavy sequence."""
    factory, world, config = build_snapshot()
    explorer = Explorer(factory, properties=randtree_properties(config))

    # A chain of successors, as BFS/steering would digest them.
    worlds = [world]
    frontier = world
    for _ in range(30 if QUICK else 120):
        actions = explorer.enabled_actions(frontier)
        if not actions:
            break
        successors = explorer.successors(frontier, actions[0])
        if not successors:
            break
        frontier = successors[0]
        worlds.append(frontier)

    def incremental():
        worlds[0].digest()
        return [w.digest() for w in worlds]

    def seed():
        return [seed_digest(w) for w in worlds]

    fast_time, fast_digests = _timed(incremental)
    slow_time, _ = _timed(seed)
    for w, d in zip(worlds, fast_digests):
        assert w.recompute_digest() == d
    digest_speedup = slow_time / fast_time
    print_table(
        f"P1: digesting a {len(worlds)}-world evolve chain",
        ("implementation", "seconds", "speedup"),
        [
            ("seed full freeze", f"{slow_time:.4f}", "1.0x"),
            ("incremental combine", f"{fast_time:.4f}", f"{digest_speedup:.1f}x"),
        ],
    )
    record_metrics(
        "P1",
        digest_chain_len=len(worlds),
        digest_speedup=round(digest_speedup, 2),
    )
    assert digest_speedup > 1.0
