"""A6 — extension: does tree quality track system size?

The paper evaluates at one size (31 nodes).  A reproduction worth
adopting should show how the result scales: optimal depth grows as
log2(n); the measured join depth should stay within a small constant of
it at every size, for every setup, and Choice-CrystalBall should stay
at least as good as the hard-coded policies throughout.
"""

from repro.eval import optimal_depth, run_tree_experiment

from conftest import print_table

SIZES = (15, 31, 63)
VARIANTS = ("baseline", "choice-random", "choice-crystalball")
SEED = 1


def run_all():
    results = {}
    for n in SIZES:
        for variant in VARIANTS:
            outcome = run_tree_experiment(variant, n=n, seed=SEED)
            results[(n, variant)] = outcome
    return results


def test_a6_depth_scaling(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for n in SIZES:
        for variant in VARIANTS:
            outcome = results[(n, variant)]
            rows.append((
                n, optimal_depth(n, 2), variant,
                outcome.depth_after_join, outcome.depth_after_rejoin,
                f"{outcome.joined_after_rejoin}/{n}",
            ))
    print_table(
        "A6: join/rejoin depth vs system size (seed 1)",
        ("n", "optimal", "variant", "join depth", "rejoin depth", "joined"),
        rows,
    )
    for n in SIZES:
        for variant in VARIANTS:
            outcome = results[(n, variant)]
            # Everyone always joins, at every scale.
            assert outcome.joined_after_join == n
            assert outcome.joined_after_rejoin == n
            # Depth stays within a small constant of optimal.
            assert outcome.depth_after_join <= optimal_depth(n, 2) + 2
        # CrystalBall at least matches the others after the rejoin.
        crystal = results[(n, "choice-crystalball")].depth_after_rejoin
        others = min(
            results[(n, "baseline")].depth_after_rejoin,
            results[(n, "choice-random")].depth_after_rejoin,
        )
        assert crystal <= others + 1
