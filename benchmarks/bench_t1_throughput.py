"""T1 — batched Multi-Paxos throughput under a high-rate client load.

Not a paper figure: the production-Paxos stress test.  A closed-loop
:class:`~repro.apps.paxos.ClientLoad` generator offers 10^5 commands to
five batched Multi-Paxos replicas over the reference WAN while an A7
chaos plan runs against the cluster, and the committed-ops rate is
measured twice:

* **steering off** — every exposed choice resolves to its first
  candidate: batch size 1, local proposer, unit retry pacing.  This is
  the legacy single-decree-per-instance replica.
* **steering on** — the deployment-model resolver
  (:func:`~repro.apps.paxos.make_throughput_resolver`) sizes batches
  from queue depth and observed conflict, routes loaded/edge replicas'
  batches through cheap proxies, and stretches retry pacing under
  conflict.

Safety is asserted throughout, not just at the end: cross-replica
agreement and at-most-once execution are probed every few simulated
seconds during every run.  A same-seed double run must produce
identical decided-log digests (the campaign is a pure function of its
seed).
"""

import os

import pytest

from repro.eval import run_throughput_experiment, standard_plans

from conftest import print_table, record_metrics

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 1
N = 5
TOTAL = 4_000 if QUICK else 100_000
HORIZON = 15.0 if QUICK else 60.0
PLANS = {p.name: p for p in standard_plans(N, HORIZON, amnesia=False)}

_RESULTS = {}


def _run(steering: bool, plan_name: str, total=TOTAL, horizon=HORIZON,
         seed=SEED):
    key = (steering, plan_name, total, horizon, seed)
    if key not in _RESULTS:
        _RESULTS[key] = run_throughput_experiment(
            steering, seed=seed, total_requests=total, horizon=horizon,
            plan=PLANS[plan_name],
        )
    return _RESULTS[key]


@pytest.mark.parametrize("plan_name", ("message-chaos", "crash-recovery"))
def test_t1_steering_beats_static_default(benchmark, plan_name):
    """Steering-on commits strictly more ops/sec than steering-off,
    with agreement and at-most-once intact under chaos."""

    def sweep():
        return [_run(False, plan_name), _run(True, plan_name)]

    off, on = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"T1: batched Multi-Paxos under {plan_name} "
        f"({TOTAL:,} offered, {HORIZON:g}s horizon)",
        ("steering", "offered", "committed", "ops/s", "mean batch",
         "probes", "safe"),
        [
            (
                "on" if r.steering else "off", f"{r.offered:,}",
                f"{r.committed:,}", f"{r.ops_per_sec:,.0f}",
                f"{r.mean_batch:.1f}", r.probes, r.safe,
            )
            for r in (off, on)
        ],
    )
    for r in (off, on):
        assert r.agreement, f"agreement violated ({'on' if r.steering else 'off'})"
        assert r.at_most_once, "a replica applied a command twice"
        assert r.probes >= 3, "safety was not probed during the run"
        assert r.committed > 0
    assert on.ops_per_sec > off.ops_per_sec, (
        f"steering did not help: {on.ops_per_sec:.0f} <= {off.ops_per_sec:.0f}"
    )
    assert on.mean_batch > 1.0, "steering never chose a batch larger than 1"
    record_metrics(
        "T1",
        **{
            f"{plan_name}.ops_per_sec_steering_on": round(on.ops_per_sec, 1),
            f"{plan_name}.ops_per_sec_steering_off": round(off.ops_per_sec, 1),
            f"{plan_name}.speedup": round(on.ops_per_sec / max(off.ops_per_sec, 1e-9), 2),
            f"{plan_name}.committed_on": on.committed,
            f"{plan_name}.committed_off": off.committed,
            f"{plan_name}.mean_batch_on": round(on.mean_batch, 1),
        },
    )


def test_t1_campaign_scale_and_safety(benchmark):
    """The campaign offers the headline request volume (>= 10^5 in the
    full run) and every run held both safety properties."""

    def materialize():
        for plan_name in ("message-chaos", "crash-recovery"):
            _run(False, plan_name)
            _run(True, plan_name)
        return list(_RESULTS.values())

    results = benchmark.pedantic(materialize, rounds=1, iterations=1)
    offered = sum(r.offered for r in results)
    committed = sum(r.committed for r in results)
    floor = 8_000 if QUICK else 100_000
    assert offered >= floor, f"campaign offered only {offered} requests"
    assert all(r.safe for r in results)
    record_metrics(
        "T1",
        quick=QUICK,
        seed=SEED,
        horizon_s=HORIZON,
        total_requests_per_run=TOTAL,
        campaign_offered=offered,
        campaign_committed=committed,
    )


def test_t1_seed_reproducibility(benchmark):
    """Same (seed, configuration) → identical decided-log digests."""
    total, horizon = 1_500, 10.0

    def run_twice():
        first = run_throughput_experiment(
            True, seed=7, total_requests=total, horizon=horizon,
            plan=standard_plans(N, horizon, amnesia=False)[0],
        )
        second = run_throughput_experiment(
            True, seed=7, total_requests=total, horizon=horizon,
            plan=standard_plans(N, horizon, amnesia=False)[0],
        )
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    print_table(
        "T1: replay determinism",
        ("run", "state digest", "committed"),
        [("first", first.state_digest, first.committed),
         ("second", second.state_digest, second.committed)],
    )
    assert first.state_digest == second.state_digest
    assert first.committed == second.committed
    record_metrics("T1", repro_digest=first.state_digest)
