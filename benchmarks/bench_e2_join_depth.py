"""E2 — Section 4 join-phase tree depth.

Paper: "After all 31 participants join the tree, the maximum depth is 6
in all cases (close to the optimal of 5)."

31 nodes join a RandTree over an Internet-like transit-stub topology in
all three setups; the maximum depth must be near-optimal and equal (or
nearly so) across setups.
"""

import pytest

from repro.eval import optimal_depth, run_tree_experiment

from conftest import print_table

SEED = 1
PAPER_DEPTH = 6


@pytest.mark.parametrize("variant", ["baseline", "choice-random", "choice-crystalball"])
def test_e2_join_depth(benchmark, variant):
    result = benchmark.pedantic(
        run_tree_experiment, args=(variant,), kwargs={"seed": SEED},
        rounds=1, iterations=1,
    )
    print_table(
        f"E2: depth after 31 joins ({variant})",
        ("metric", "paper", "measured"),
        [
            ("max depth", PAPER_DEPTH, result.depth_after_join),
            ("optimal", 5, optimal_depth(31, 2)),
            ("joined", "31/31", f"{result.joined_after_join}/31"),
        ],
    )
    assert result.joined_after_join == 31
    assert optimal_depth(31, 2) <= result.depth_after_join <= PAPER_DEPTH + 1
