"""A1 — ablation: model freshness under a flash-crowd rejoin.

Section 3.3.2 asks "how to keep the model up to date?" and proposes two
mechanisms this repo implements:

* fresher checkpoints (shorter periods / broadcast-on-change), and
* *service-contributed model state* ("the distributed service itself
  can contribute to efficiently maintaining the model by exporting
  state whose goal is to keep track of information in other nodes") —
  here the exposed RandTree exports its recent-forward counts so that
  in-flight joins, which no checkpoint can show, still influence
  choice resolution.

The stress case is a flash-crowd rejoin (victims restart 0.02 s apart,
15× denser than the default scenario).  Finding recorded in
EXPERIMENTS.md: fresher checkpoints alone do NOT fix the resulting
herding (the missing information is in-flight work, not stale state);
the service-contributed term does.
"""

import statistics

from repro.eval import run_tree_experiment

from conftest import print_table

SEEDS = (1, 2, 3)
FLASH = dict(rejoin_spacing=0.02, rejoin_settle=15.0)


def run_all():
    results = {}
    results["choice-random"] = [
        run_tree_experiment("choice-random", seed=s, **FLASH).depth_after_rejoin
        for s in SEEDS
    ]
    for label, kwargs in (
        ("cb periodic 0.5s", dict(checkpoint_period=0.5)),
        ("cb periodic 0.1s", dict(checkpoint_period=0.1)),
        ("cb on-change", dict(
            checkpoint_period=0.5,
            runtime_kwargs=dict(broadcast_on_change=True, min_broadcast_interval=0.0),
        )),
    ):
        results[label] = [
            run_tree_experiment("choice-crystalball", seed=s, **FLASH, **kwargs)
            .depth_after_rejoin
            for s in SEEDS
        ]
    return results


def test_a1_flash_crowd_staleness(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (label, f"{statistics.mean(depths):.2f}", str(depths))
        for label, depths in results.items()
    ]
    print_table(
        "A1: rejoin depth under a flash crowd (0.02 s spacing)",
        ("setup", "mean depth", "per-seed"),
        rows,
    )
    crystal = statistics.mean(results["cb periodic 0.5s"])
    random_mean = statistics.mean(results["choice-random"])
    # With service-contributed in-flight state, predictive resolution
    # holds its advantage even under the burst.
    assert crystal <= random_mean
